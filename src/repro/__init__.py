"""repro — reproduction of Helios (DAC 2021).

Helios: Heterogeneity-Aware Federated Learning with Dynamically Balanced
Collaboration.  The package is organised as:

* :mod:`repro.nn` — pure-NumPy neural-network substrate,
* :mod:`repro.data` — synthetic datasets and federated partitioning,
* :mod:`repro.hardware` — device profiles and the analytical cost model,
* :mod:`repro.fl` — the federated-learning simulator,
* :mod:`repro.core` — the Helios framework (the paper's contribution),
* :mod:`repro.baselines` — Syn./Asyn. FL, AFO, Random, Fixed Pruning,
  S.T. Only,
* :mod:`repro.metrics` — convergence/speed-up metrics and reporting,
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from . import baselines, core, data, fl, hardware, metrics, nn
from .core import HeliosConfig, HeliosStrategy

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "hardware",
    "fl",
    "core",
    "baselines",
    "metrics",
    "HeliosConfig",
    "HeliosStrategy",
    "__version__",
]
