"""Tests for the ModelMask structure."""

import numpy as np
import pytest

from repro.nn import ModelMask

from ..conftest import make_tiny_model


@pytest.fixture
def model():
    return make_tiny_model()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConstruction:
    def test_full_mask_covers_all_layers(self, model):
        mask = ModelMask.full(model)
        assert set(mask.layer_names()) == {"fc1", "fc2", "output"}
        assert mask.active_fraction() == 1.0

    def test_empty_mask(self, model):
        mask = ModelMask.empty(model)
        assert mask.total_active() == 0

    def test_random_respects_fraction(self, model, rng):
        mask = ModelMask.random(model, {"fc1": 0.5, "fc2": 0.5,
                                        "output": 0.5}, rng)
        counts = mask.active_counts()
        assert counts["fc1"] == 8
        assert counts["fc2"] == 4
        assert counts["output"] == 2

    def test_random_keeps_at_least_one(self, model, rng):
        mask = ModelMask.random(model, {"fc1": 0.01, "fc2": 0.01,
                                        "output": 0.01}, rng)
        assert all(count >= 1 for count in mask.active_counts().values())

    def test_random_missing_layer_defaults_to_full(self, model, rng):
        mask = ModelMask.random(model, {"fc1": 0.5}, rng)
        assert mask.active_counts()["fc2"] == 8

    def test_random_invalid_fraction(self, model, rng):
        with pytest.raises(ValueError):
            ModelMask.random(model, {"fc1": 1.5}, rng)

    def test_constructor_copies_input(self, model):
        arrays = {"fc1": np.ones(16, dtype=bool)}
        mask = ModelMask(arrays)
        arrays["fc1"][:] = False
        assert mask.total_active() == 16


class TestStatistics:
    def test_total_counts(self, model):
        mask = ModelMask.full(model)
        assert mask.total_neurons() == 28
        assert mask.total_active() == 28

    def test_layer_fractions(self, model, rng):
        mask = ModelMask.random(model, {"fc1": 0.25, "fc2": 1.0,
                                        "output": 1.0}, rng)
        fractions = mask.layer_fractions()
        np.testing.assert_allclose(fractions["fc1"], 0.25)
        np.testing.assert_allclose(fractions["fc2"], 1.0)

    def test_active_fraction_mixed(self, model):
        arrays = {"fc1": np.zeros(16, dtype=bool),
                  "fc2": np.ones(8, dtype=bool),
                  "output": np.ones(4, dtype=bool)}
        mask = ModelMask(arrays)
        np.testing.assert_allclose(mask.active_fraction(), 12 / 28)


class TestSetAlgebra:
    def test_union(self, model):
        a = ModelMask.empty(model)
        b = ModelMask.full(model)
        assert a.union(b).active_fraction() == 1.0

    def test_intersection(self, model):
        a = ModelMask.empty(model)
        b = ModelMask.full(model)
        assert a.intersection(b).total_active() == 0

    def test_union_tracks_coverage_over_cycles(self, model, rng):
        # Repeated random 30% selections should eventually cover everything
        # (the paper's rotation argument in miniature).
        coverage = ModelMask.empty(model)
        for _ in range(30):
            coverage = coverage.union(ModelMask.random(
                model, {"fc1": 0.3, "fc2": 0.3, "output": 0.3}, rng))
        assert coverage.active_fraction() == 1.0

    def test_incompatible_layers_raise(self, model):
        a = ModelMask({"fc1": np.ones(16, dtype=bool)})
        b = ModelMask.full(model)
        with pytest.raises(ValueError):
            a.union(b)


class TestApplication:
    def test_apply_sets_layer_masks(self, model, rng):
        mask = ModelMask.random(model, {"fc1": 0.5, "fc2": 0.5,
                                        "output": 1.0}, rng)
        mask.apply(model)
        np.testing.assert_allclose(model.active_neuron_fraction(),
                                   mask.active_fraction())

    def test_masked_forward_zeroes_outputs(self, model, rng):
        arrays = {"output": np.array([True, False, True, False])}
        ModelMask(arrays).apply(model)
        out = model.forward(rng.normal(size=(3, 1, 8, 8)))
        assert np.all(out[:, 1] == 0.0)
        assert np.all(out[:, 3] == 0.0)

    def test_copy_is_independent(self, model):
        mask = ModelMask.full(model)
        clone = mask.copy()
        clone["fc1"][:] = False
        assert mask.active_counts()["fc1"] == 16

    def test_as_dict_roundtrip(self, model):
        mask = ModelMask.full(model)
        rebuilt = ModelMask(mask.as_dict())
        assert rebuilt.active_counts() == mask.active_counts()
