"""Behavioural tests for the layer zoo (shapes, masking, modes, errors)."""

import numpy as np
import pytest

from repro.nn.layers import (AvgPool2D, BatchNorm1D, BatchNorm2D, Conv2D,
                             Dense, Dropout, Flatten, GlobalAvgPool2D,
                             MaxPool2D, ReLU, ResidualBlock, Sigmoid,
                             Softmax, Tanh)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(10, 7, rng=rng)
        assert layer.forward(rng.normal(size=(4, 10))).shape == (4, 7)

    def test_num_neurons(self, rng):
        assert Dense(10, 7, rng=rng).num_neurons == 7

    def test_bias_disabled(self, rng):
        layer = Dense(3, 2, use_bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_bad_input_dim(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 5)))

    def test_rejects_non_2d_input(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 3, 1)))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_mask_zeroes_outputs(self, rng):
        layer = Dense(4, 3, rng=rng)
        mask = np.array([True, False, True])
        layer.set_neuron_mask(mask)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert np.all(out[:, 1] == 0.0)
        assert np.any(out[:, 0] != 0.0)

    def test_mask_blocks_gradient(self, rng):
        layer = Dense(4, 3, rng=rng)
        layer.set_neuron_mask(np.array([True, False, True]))
        layer.forward(rng.normal(size=(5, 4)))
        layer.backward(np.ones((5, 3)))
        assert np.all(layer.weight.grad[1] == 0.0)
        assert np.any(layer.weight.grad[0] != 0.0)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(3, 2, rng=rng).backward(np.ones((1, 2)))

    def test_wrong_mask_size_raises(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.set_neuron_mask(np.array([True, False]))


class TestConv2D:
    def test_output_shape_padded(self, rng):
        layer = Conv2D(3, 8, 3, padding=1, rng=rng)
        assert layer.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 8, 8, 8)

    def test_output_shape_strided(self, rng):
        layer = Conv2D(1, 4, 3, stride=2, padding=1, rng=rng)
        assert layer.forward(rng.normal(size=(2, 1, 8, 8))).shape == (2, 4, 4, 4)

    def test_output_shape_helper_matches_forward(self, rng):
        layer = Conv2D(2, 5, 5, stride=2, padding=2, rng=rng)
        out = layer.forward(rng.normal(size=(1, 2, 9, 9)))
        assert out.shape[1:] == layer.output_shape((2, 9, 9))

    def test_num_neurons_is_filters(self, rng):
        assert Conv2D(3, 12, 3, rng=rng).num_neurons == 12

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 8, 8)))

    def test_rejects_non_4d(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 8, 8)))

    def test_mask_zeroes_filter_maps(self, rng):
        layer = Conv2D(1, 3, 3, padding=1, rng=rng)
        layer.set_neuron_mask(np.array([False, True, True]))
        out = layer.forward(rng.normal(size=(2, 1, 5, 5)))
        assert np.all(out[:, 0] == 0.0)
        assert np.any(out[:, 1] != 0.0)

    def test_matches_manual_convolution(self, rng):
        # Single 2x2 kernel, no padding: compare against a hand computation.
        layer = Conv2D(1, 1, 2, padding=0, use_bias=False, rng=rng)
        kernel = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.weight.data = kernel
        image = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        out = layer.forward(image)
        expected_00 = 0 * 1 + 1 * 2 + 3 * 3 + 4 * 4
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == expected_00


class TestPooling:
    def test_maxpool_selects_maximum(self):
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = MaxPool2D(2).forward(image)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 4.0

    def test_avgpool_averages(self):
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = AvgPool2D(2).forward(image)
        assert out[0, 0, 0, 0] == 2.5

    def test_global_avgpool_shape(self, rng):
        out = GlobalAvgPool2D().forward(rng.normal(size=(3, 5, 4, 4)))
        assert out.shape == (3, 5)

    def test_maxpool_backward_routes_to_argmax(self):
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = MaxPool2D(2)
        layer.forward(image)
        grad = layer.backward(np.array([[[[10.0]]]]))
        expected = np.array([[[[0.0, 0.0], [0.0, 10.0]]]])
        np.testing.assert_array_equal(grad, expected)

    def test_pool_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(rng.normal(size=(4, 4)))


class TestActivations:
    def test_relu_clamps_negatives(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(10,)) * 10)
        assert np.all((out > 0) & (out < 1))

    def test_sigmoid_saturation_is_stable(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10,)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_softmax_sums_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))

    def test_activation_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones(3))


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm1D(6)
        out = layer.forward(rng.normal(loc=5.0, scale=3.0, size=(200, 6)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self, rng):
        layer = BatchNorm1D(3, momentum=0.0)
        batch = rng.normal(loc=2.0, size=(50, 3))
        layer.forward(batch)
        np.testing.assert_allclose(layer.running_mean, batch.mean(axis=0))

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1D(3)
        for _ in range(20):
            layer.forward(rng.normal(loc=1.0, size=(64, 3)))
        layer.eval()
        out = layer.forward(np.full((4, 3), 1.0))
        # inputs equal to the running mean normalize to roughly beta (=0).
        assert np.all(np.abs(out) < 0.5)

    def test_2d_variant_shape(self, rng):
        layer = BatchNorm2D(4)
        out = layer.forward(rng.normal(size=(2, 4, 3, 3)))
        assert out.shape == (2, 4, 3, 3)

    def test_num_neurons(self):
        assert BatchNorm2D(9).num_neurons == 9

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm1D(4, momentum=1.5)


class TestReshapeLayers:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        inputs = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(inputs)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        assert back.shape == inputs.shape

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        inputs = rng.normal(size=(5, 5))
        np.testing.assert_array_equal(layer.forward(inputs), inputs)

    def test_dropout_train_zeroes_fraction(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        out = layer.forward(np.ones((200, 200)))
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((300, 300)))
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestResidualBlock:
    def test_identity_shortcut_shape(self, rng):
        block = ResidualBlock(4, 4, stride=1, rng=rng)
        out = block.forward(rng.normal(size=(2, 4, 6, 6)))
        assert out.shape == (2, 4, 6, 6)

    def test_projection_shortcut_shape(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        out = block.forward(rng.normal(size=(2, 4, 6, 6)))
        assert out.shape == (2, 8, 3, 3)

    def test_collects_sublayer_parameters(self, rng):
        block = ResidualBlock(2, 4, stride=2, rng=rng)
        names = {param.name for param in block.parameters()}
        assert any("shortcut" in name for name in names)
        assert len(block.parameters()) > 4

    def test_train_eval_propagates(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        block.eval()
        assert not block.bn1.training
        block.train()
        assert block.bn1.training
