"""Tests for repro.nn.parameter."""

import numpy as np
import pytest

from repro.nn import Parameter


class TestParameterBasics:
    def test_data_is_float64(self):
        param = Parameter(np.ones((2, 3), dtype=np.float32))
        assert param.data.dtype == np.float64

    def test_grad_initialized_to_zeros(self):
        param = Parameter(np.ones((2, 3)))
        assert np.all(param.grad == 0.0)
        assert param.grad.shape == (2, 3)

    def test_shape_and_size(self):
        param = Parameter(np.zeros((4, 5)))
        assert param.shape == (4, 5)
        assert param.size == 20

    def test_zero_grad_resets(self):
        param = Parameter(np.ones(3))
        param.grad += 5.0
        param.zero_grad()
        assert np.all(param.grad == 0.0)

    def test_default_name(self):
        param = Parameter(np.zeros(2))
        assert param.name == "param"


class TestNeuronStructure:
    def test_num_neurons_axis0(self):
        param = Parameter(np.zeros((6, 3)), neuron_axis=0)
        assert param.num_neurons == 6

    def test_num_neurons_other_axis(self):
        param = Parameter(np.zeros((6, 3)), neuron_axis=1)
        assert param.num_neurons == 3

    def test_num_neurons_unstructured(self):
        param = Parameter(np.zeros((6, 3)), neuron_axis=None)
        assert param.num_neurons == 0

    def test_neuron_slice(self):
        data = np.arange(12).reshape(4, 3)
        param = Parameter(data, neuron_axis=0)
        np.testing.assert_array_equal(param.neuron_slice(2), data[2])

    def test_neuron_slice_unstructured_raises(self):
        param = Parameter(np.zeros(3), neuron_axis=None)
        with pytest.raises(ValueError):
            param.neuron_slice(0)

    def test_neuron_norms(self):
        data = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 0.0]])
        param = Parameter(data, neuron_axis=0)
        np.testing.assert_allclose(param.neuron_norms(), [5.0, 0.0, 1.0])

    def test_neuron_norms_respects_axis(self):
        data = np.array([[3.0, 0.0], [4.0, 1.0]])
        param = Parameter(data, neuron_axis=1)
        np.testing.assert_allclose(param.neuron_norms(), [5.0, 1.0])

    def test_neuron_norms_unstructured_raises(self):
        param = Parameter(np.zeros(3), neuron_axis=None)
        with pytest.raises(ValueError):
            param.neuron_norms()


class TestCopy:
    def test_copy_is_deep(self):
        param = Parameter(np.ones((2, 2)), name="w")
        param.grad += 1.0
        clone = param.copy()
        clone.data[0, 0] = 99.0
        clone.grad[0, 0] = 99.0
        assert param.data[0, 0] == 1.0
        assert param.grad[0, 0] == 1.0

    def test_copy_preserves_metadata(self):
        param = Parameter(np.ones((2, 2)), name="w", neuron_axis=1)
        clone = param.copy()
        assert clone.name == "w"
        assert clone.neuron_axis == 1
