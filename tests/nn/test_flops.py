"""Tests for the FLOP / memory estimator."""

import numpy as np
import pytest

from repro.nn import Sequential, estimate_model_cost, trace_shapes
from repro.nn.flops import TRAINING_FLOP_MULTIPLIER
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.models import build_lenet

from ..conftest import make_tiny_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def simple_cnn(rng):
    return Sequential([
        Conv2D(1, 4, 3, padding=1, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Flatten(name="flatten"),
        Dense(4 * 4 * 4, 6, rng=rng, name="fc1"),
        ReLU(name="relu2"),
        Dense(6, 3, rng=rng, name="out"),
    ], name="simple-cnn")


class TestTraceShapes:
    def test_records_every_leaf_layer(self, rng):
        model = simple_cnn(rng)
        records = trace_shapes(model, (1, 8, 8))
        assert len(records) == len(model.layers)

    def test_shapes_are_per_sample(self, rng):
        model = simple_cnn(rng)
        records = trace_shapes(model, (1, 8, 8))
        conv_record = records[0]
        assert conv_record[1] == (1, 8, 8)
        assert conv_record[2] == (4, 8, 8)

    def test_restores_forward_methods(self, rng):
        model = simple_cnn(rng)
        trace_shapes(model, (1, 8, 8))
        # The model must still work normally afterwards.
        out = model.forward(rng.normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 3)

    def test_restores_training_mode(self, rng):
        model = simple_cnn(rng)
        model.train()
        trace_shapes(model, (1, 8, 8))
        assert model.training


class TestFlopFormulas:
    def test_dense_flops(self, rng):
        model = Sequential([Dense(10, 5, rng=rng, name="d")])
        cost = estimate_model_cost(model, (10,))
        np.testing.assert_allclose(cost.inference_flops, 2 * 10 * 5)

    def test_conv_flops(self, rng):
        model = Sequential([Conv2D(2, 3, 3, padding=1, rng=rng, name="c")])
        cost = estimate_model_cost(model, (2, 4, 4))
        # out values = 3*4*4, macs per value = 2*3*3.
        expected = 2.0 * (3 * 4 * 4) * (2 * 3 * 3)
        np.testing.assert_allclose(cost.inference_flops, expected)

    def test_training_flops_multiplier(self, rng):
        model = Sequential([Dense(8, 4, rng=rng)])
        cost = estimate_model_cost(model, (8,))
        np.testing.assert_allclose(cost.training_flops,
                                   cost.inference_flops
                                   * TRAINING_FLOP_MULTIPLIER)

    def test_parameter_count_matches_model(self, rng):
        model = simple_cnn(rng)
        cost = estimate_model_cost(model, (1, 8, 8))
        assert cost.parameters == model.num_parameters()

    def test_memory_grows_with_batch(self, rng):
        model = simple_cnn(rng)
        cost = estimate_model_cost(model, (1, 8, 8))
        assert cost.memory_bytes(batch_size=16) > cost.memory_bytes(1)

    def test_training_gflops_scales_with_samples(self, rng):
        model = simple_cnn(rng)
        cost = estimate_model_cost(model, (1, 8, 8))
        np.testing.assert_allclose(cost.training_gflops(100),
                                   100 * cost.training_gflops(1))


class TestNeuronFractions:
    def test_uniform_fraction_reduces_flops(self, rng):
        model = make_tiny_model()
        full = estimate_model_cost(model, (1, 8, 8))
        fractions = {layer.name: 0.5 for layer in model.neuron_layers()}
        half = estimate_model_cost(model, (1, 8, 8),
                                   neuron_fractions=fractions)
        assert half.inference_flops < full.inference_flops
        assert half.parameters < full.parameters

    def test_fraction_one_equals_full(self, rng):
        model = make_tiny_model()
        full = estimate_model_cost(model, (1, 8, 8))
        ones = estimate_model_cost(
            model, (1, 8, 8),
            neuron_fractions={layer.name: 1.0
                              for layer in model.neuron_layers()})
        np.testing.assert_allclose(ones.inference_flops, full.inference_flops)

    def test_quadratic_scaling_of_middle_layers(self, rng):
        # Halving every layer's neurons roughly quarters the work of middle
        # layers (both inputs and outputs shrink).
        model = make_tiny_model()
        full = estimate_model_cost(model, (1, 8, 8))
        half = estimate_model_cost(
            model, (1, 8, 8),
            neuron_fractions={layer.name: 0.5
                              for layer in model.neuron_layers()})
        ratio = half.inference_flops / full.inference_flops
        assert 0.2 < ratio < 0.6

    def test_invalid_fraction_raises(self, rng):
        model = make_tiny_model()
        with pytest.raises(ValueError):
            estimate_model_cost(model, (1, 8, 8),
                                neuron_fractions={"fc1": 0.0})

    def test_lenet_cost_positive(self, rng):
        model = build_lenet(width_multiplier=0.25, rng=rng)
        cost = estimate_model_cost(model, (1, 28, 28))
        assert cost.training_flops > 0
        assert cost.memory_megabytes() > 0
