"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn import initializers


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasicInitializers:
    def test_zeros(self, rng):
        assert np.all(initializers.zeros((3, 4), rng) == 0.0)

    def test_ones(self, rng):
        assert np.all(initializers.ones((3, 4), rng) == 1.0)

    def test_uniform_range(self, rng):
        values = initializers.uniform((1000,), rng, low=-0.1, high=0.1)
        assert values.min() >= -0.1
        assert values.max() < 0.1

    def test_normal_std(self, rng):
        values = initializers.normal((20000,), rng, std=0.2)
        assert abs(values.std() - 0.2) < 0.01

    def test_shapes_match(self, rng):
        for name in ("xavier_uniform", "xavier_normal", "he_uniform",
                     "he_normal"):
            init = initializers.get_initializer(name)
            assert init((5, 7), rng).shape == (5, 7)


class TestVarianceScaling:
    def test_xavier_normal_variance(self, rng):
        fan_in, fan_out = 128, 64
        values = initializers.xavier_normal((fan_out, fan_in), rng)
        expected_std = np.sqrt(2.0 / (fan_in + fan_out))
        assert abs(values.std() - expected_std) / expected_std < 0.15

    def test_he_normal_variance(self, rng):
        fan_in = 256
        values = initializers.he_normal((64, fan_in), rng)
        expected_std = np.sqrt(2.0 / fan_in)
        assert abs(values.std() - expected_std) / expected_std < 0.15

    def test_he_uniform_bound(self, rng):
        fan_in = 100
        values = initializers.he_uniform((50, fan_in), rng)
        limit = np.sqrt(6.0 / fan_in)
        assert np.all(np.abs(values) <= limit)

    def test_conv_fan_in_uses_receptive_field(self, rng):
        # (out, in, kh, kw): fan_in = in * kh * kw.
        values = initializers.he_normal((8, 4, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (4 * 9))
        assert abs(values.std() - expected_std) / expected_std < 0.2


class TestRegistry:
    def test_get_initializer_known(self):
        assert initializers.get_initializer("he_normal") is initializers.he_normal

    def test_get_initializer_unknown_raises(self):
        with pytest.raises(KeyError):
            initializers.get_initializer("not-an-init")

    def test_reproducible_with_same_seed(self):
        a = initializers.xavier_uniform((4, 4), np.random.default_rng(5))
        b = initializers.xavier_uniform((4, 4), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
