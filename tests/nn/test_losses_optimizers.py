"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.nn import (Adam, MeanSquaredError, MomentumSGD, Parameter, SGD,
                      SoftmaxCrossEntropy, get_loss, get_optimizer)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        value = loss.forward(logits, np.array([0, 1]))
        assert value < 1e-4

    def test_uniform_prediction_loss_is_log_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 5))
        value = loss.forward(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(value, np.log(5), rtol=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 3])
        loss.forward(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric[i, j] = (loss.forward(plus, targets)
                                 - loss.forward(minus, targets)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_gradient_sums_to_zero_per_sample(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 6))
        loss.forward(logits, np.zeros(5, dtype=int))
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_rejects_out_of_range_labels(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_shape_mismatch(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 1, 2]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_numerically_stable_with_large_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.array([[1e4, -1e4]]), np.array([0]))
        assert np.isfinite(value)


class TestMeanSquaredError:
    def test_zero_for_exact_match(self, rng):
        predictions = rng.normal(size=(4, 3))
        assert MeanSquaredError().forward(predictions, predictions) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        value = loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(value, 2.5)

    def test_gradient(self):
        loss = MeanSquaredError()
        predictions = np.array([[2.0, 0.0]])
        loss.forward(predictions, np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(loss.backward(), [[2.0, 0.0]])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestLossRegistry:
    def test_get_loss_known(self):
        assert isinstance(get_loss("cross_entropy"), SoftmaxCrossEntropy)
        assert isinstance(get_loss("mse"), MeanSquaredError)

    def test_get_loss_unknown(self):
        with pytest.raises(KeyError):
            get_loss("hinge")


def quadratic_params(rng, count=3):
    """Parameters initialized away from the optimum of f(x) = ||x||^2 / 2."""
    return [Parameter(rng.normal(size=(4,)) + 2.0, name=f"p{i}")
            for i in range(count)]


def quadratic_step(params):
    """Set gradients of f = sum ||p||^2 / 2, i.e. grad = p."""
    for param in params:
        param.grad = param.data.copy()


class TestOptimizers:
    def test_sgd_descends_quadratic(self, rng):
        params = quadratic_params(rng)
        optimizer = SGD(params, lr=0.1)
        initial = sum(np.sum(p.data ** 2) for p in params)
        for _ in range(50):
            quadratic_step(params)
            optimizer.step()
        final = sum(np.sum(p.data ** 2) for p in params)
        assert final < initial * 1e-3

    def test_momentum_descends_quadratic(self, rng):
        params = quadratic_params(rng)
        optimizer = MomentumSGD(params, lr=0.05, momentum=0.9)
        for _ in range(150):
            quadratic_step(params)
            optimizer.step()
        assert sum(np.sum(p.data ** 2) for p in params) < 1e-3

    def test_adam_descends_quadratic(self, rng):
        params = quadratic_params(rng)
        optimizer = Adam(params, lr=0.2)
        for _ in range(200):
            quadratic_step(params)
            optimizer.step()
        assert sum(np.sum(p.data ** 2) for p in params) < 1e-2

    def test_sgd_weight_decay_shrinks_weights(self, rng):
        param = Parameter(np.full(3, 10.0))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(3)
        optimizer.step()
        assert np.all(param.data < 10.0)

    def test_sgd_exact_update(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.5)
        param.grad = np.array([2.0])
        optimizer.step()
        np.testing.assert_allclose(param.data, [0.0])

    def test_zero_grad_clears_all(self, rng):
        params = quadratic_params(rng)
        optimizer = SGD(params, lr=0.1)
        quadratic_step(params)
        optimizer.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in params)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            MomentumSGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.0)

    def test_invalid_adam_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.1, beta1=1.0)

    def test_optimizer_registry(self):
        params = [Parameter(np.zeros(2))]
        assert isinstance(get_optimizer("sgd", params, lr=0.1), SGD)
        assert isinstance(get_optimizer("momentum", params, lr=0.1),
                          MomentumSGD)
        assert isinstance(get_optimizer("adam", params, lr=0.1), Adam)
        with pytest.raises(KeyError):
            get_optimizer("lbfgs", params, lr=0.1)
