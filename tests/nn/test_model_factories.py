"""Tests for the LeNet / AlexNet / ResNet / MLP factories."""

import numpy as np
import pytest

from repro.nn import SGD, SoftmaxCrossEntropy
from repro.nn.models import (available_models, build_alexnet, build_lenet,
                             build_mlp, build_model, build_resnet)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLeNet:
    def test_default_output_shape(self, rng):
        model = build_lenet(rng=rng, width_multiplier=0.3)
        out = model.forward(rng.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_width_multiplier_scales_params(self, rng):
        small = build_lenet(width_multiplier=0.25, rng=rng)
        large = build_lenet(width_multiplier=0.5, rng=rng)
        assert large.num_parameters() > small.num_parameters()

    def test_custom_classes(self, rng):
        model = build_lenet(num_classes=7, width_multiplier=0.25, rng=rng)
        assert model.forward(rng.normal(size=(1, 1, 28, 28))).shape == (1, 7)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_lenet(width_multiplier=0.0)

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            build_lenet(input_shape=(1, 8, 8))

    def test_has_conv_and_dense_neuron_layers(self, rng):
        model = build_lenet(width_multiplier=0.25, rng=rng)
        names = [layer.name for layer in model.neuron_layers()]
        assert any("conv" in name for name in names)
        assert any("fc" in name for name in names)


class TestAlexNet:
    def test_output_shape(self, rng):
        model = build_alexnet(width_multiplier=0.06, dropout_rate=0.0,
                              rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_dropout_optional(self, rng):
        with_dropout = build_alexnet(width_multiplier=0.06, dropout_rate=0.5,
                                     rng=rng)
        without = build_alexnet(width_multiplier=0.06, dropout_rate=0.0,
                                rng=rng)
        assert len(with_dropout.layers) == len(without.layers) + 2

    def test_requires_divisible_input(self):
        with pytest.raises(ValueError):
            build_alexnet(input_shape=(3, 30, 30))

    def test_five_conv_layers(self, rng):
        model = build_alexnet(width_multiplier=0.06, rng=rng)
        conv_layers = [layer for layer in model.neuron_layers()
                       if "conv" in layer.name]
        assert len(conv_layers) == 5


class TestResNet:
    def test_output_shape(self, rng):
        model = build_resnet(width_multiplier=0.08, blocks_per_stage=(1, 1),
                             num_classes=100, rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 100)

    def test_resnet18_layout_block_count(self, rng):
        model = build_resnet(width_multiplier=0.05,
                             blocks_per_stage=(2, 2, 2, 2), rng=rng)
        from repro.nn.layers import ResidualBlock
        blocks = [layer for layer in model.layers
                  if isinstance(layer, ResidualBlock)]
        assert len(blocks) == 8

    def test_stage_downsampling(self, rng):
        model = build_resnet(width_multiplier=0.08, blocks_per_stage=(1, 1),
                             num_classes=10, rng=rng)
        # Forward works on small inputs thanks to global average pooling.
        out = model.forward(rng.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 10)

    def test_empty_stages_raise(self):
        with pytest.raises(ValueError):
            build_resnet(blocks_per_stage=())


class TestMLP:
    def test_flatten_input(self, rng):
        model = build_mlp(64, 4, hidden_sizes=(8,), rng=rng,
                          flatten_input=True)
        out = model.forward(rng.normal(size=(3, 1, 8, 8)))
        assert out.shape == (3, 4)

    def test_hidden_sizes_respected(self, rng):
        model = build_mlp(10, 2, hidden_sizes=(20, 30), rng=rng)
        assert model.neuron_counts() == [20, 30, 2]


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"mlp", "lenet", "alexnet",
                                           "resnet"}

    def test_build_model_lenet(self, rng):
        model = build_model("lenet", (1, 28, 28), 10, width_multiplier=0.25,
                            rng=rng)
        assert model.forward(rng.normal(size=(1, 1, 28, 28))).shape == (1, 10)

    def test_build_model_unknown(self):
        with pytest.raises(KeyError):
            build_model("vgg", (3, 32, 32), 10)

    def test_all_models_train_one_step(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        shapes = {"mlp": (1, 8, 8), "lenet": (1, 28, 28),
                  "alexnet": (3, 16, 16), "resnet": (3, 16, 16)}
        widths = {"mlp": 0.5, "lenet": 0.25, "alexnet": 0.06, "resnet": 0.05}
        for name in available_models():
            model = build_model(name, shapes[name], 4,
                                width_multiplier=widths[name], rng=rng)
            inputs = rng.normal(size=(4,) + shapes[name])
            targets = np.arange(4) % 4
            optimizer = SGD(model.parameters(), lr=0.01)
            value = model.train_step(inputs, targets, loss_fn, optimizer)
            assert np.isfinite(value)

    def test_same_seed_same_model(self, rng):
        model_a = build_model("lenet", (1, 28, 28), 10, width_multiplier=0.25,
                              rng=np.random.default_rng(3))
        model_b = build_model("lenet", (1, 28, 28), 10, width_multiplier=0.25,
                              rng=np.random.default_rng(3))
        inputs = rng.normal(size=(2, 1, 28, 28))
        np.testing.assert_allclose(model_a.forward(inputs),
                                   model_b.forward(inputs))
