"""Numerical gradient checks for every differentiable layer.

Each test compares the analytic backward pass against central finite
differences on a tiny input.  These checks are the backbone of trust in the
NumPy substrate: if they pass, the federated training dynamics built on top
are faithful.
"""

import numpy as np
import pytest

from repro.nn.layers import (AvgPool2D, BatchNorm1D, BatchNorm2D, Conv2D,
                             Dense, GlobalAvgPool2D, LeakyReLU, MaxPool2D,
                             ReLU, ResidualBlock, Sigmoid, Softmax, Tanh)

EPS = 1e-5
TOL = 1e-4


def numerical_input_grad(layer, inputs, grad_output):
    """Central-difference gradient of sum(output * grad_output) w.r.t. inputs."""
    numeric = np.zeros_like(inputs)
    flat_inputs = inputs.reshape(-1)
    flat_numeric = numeric.reshape(-1)
    for index in range(flat_inputs.size):
        original = flat_inputs[index]
        flat_inputs[index] = original + EPS
        plus = np.sum(layer.forward(inputs) * grad_output)
        flat_inputs[index] = original - EPS
        minus = np.sum(layer.forward(inputs) * grad_output)
        flat_inputs[index] = original
        flat_numeric[index] = (plus - minus) / (2 * EPS)
    return numeric


def numerical_param_grad(layer, param, inputs, grad_output):
    """Central-difference gradient w.r.t. one parameter tensor."""
    numeric = np.zeros_like(param.data)
    flat_data = param.data.reshape(-1)
    flat_numeric = numeric.reshape(-1)
    for index in range(flat_data.size):
        original = flat_data[index]
        flat_data[index] = original + EPS
        plus = np.sum(layer.forward(inputs) * grad_output)
        flat_data[index] = original - EPS
        minus = np.sum(layer.forward(inputs) * grad_output)
        flat_data[index] = original
        flat_numeric[index] = (plus - minus) / (2 * EPS)
    return numeric


def check_layer(layer, inputs, check_params=True, tol=TOL):
    rng = np.random.default_rng(0)
    outputs = layer.forward(inputs)
    grad_output = rng.normal(size=outputs.shape)

    layer.zero_grad()
    layer.forward(inputs)
    analytic_input_grad = layer.backward(grad_output)
    numeric_input_grad = numerical_input_grad(layer, inputs, grad_output)
    np.testing.assert_allclose(analytic_input_grad, numeric_input_grad,
                               atol=tol, rtol=tol)

    if check_params:
        for param in layer.parameters():
            numeric = numerical_param_grad(layer, param, inputs, grad_output)
            layer.zero_grad()
            layer.forward(inputs)
            layer.backward(grad_output)
            np.testing.assert_allclose(param.grad, numeric, atol=tol,
                                       rtol=tol)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDenseGradients:
    def test_dense_gradients(self, rng):
        layer = Dense(5, 4, rng=rng)
        check_layer(layer, rng.normal(size=(3, 5)))

    def test_dense_no_bias_gradients(self, rng):
        layer = Dense(5, 4, use_bias=False, rng=rng)
        check_layer(layer, rng.normal(size=(3, 5)))

    def test_dense_masked_gradients(self, rng):
        layer = Dense(4, 6, rng=rng)
        layer.set_neuron_mask(np.array([True, False, True, True, False, True]))
        check_layer(layer, rng.normal(size=(2, 4)))


class TestConvGradients:
    def test_conv_gradients(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        check_layer(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_conv_strided_gradients(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, padding=1, rng=rng)
        check_layer(layer, rng.normal(size=(2, 1, 6, 6)))

    def test_conv_no_padding_gradients(self, rng):
        layer = Conv2D(1, 2, 3, padding=0, rng=rng)
        check_layer(layer, rng.normal(size=(1, 1, 5, 5)))

    def test_conv_masked_gradients(self, rng):
        layer = Conv2D(1, 4, 3, padding=1, rng=rng)
        layer.set_neuron_mask(np.array([True, False, True, False]))
        check_layer(layer, rng.normal(size=(1, 1, 4, 4)))


class TestPoolingGradients:
    def test_maxpool_gradients(self, rng):
        layer = MaxPool2D(2)
        check_layer(layer, rng.normal(size=(2, 2, 4, 4)), check_params=False)

    def test_avgpool_gradients(self, rng):
        layer = AvgPool2D(2)
        check_layer(layer, rng.normal(size=(2, 2, 4, 4)), check_params=False)

    def test_global_avgpool_gradients(self, rng):
        layer = GlobalAvgPool2D()
        check_layer(layer, rng.normal(size=(2, 3, 4, 4)), check_params=False)


class TestActivationGradients:
    def test_relu_gradients(self, rng):
        check_layer(ReLU(), rng.normal(size=(3, 6)) + 0.05,
                    check_params=False)

    def test_leaky_relu_gradients(self, rng):
        check_layer(LeakyReLU(0.1), rng.normal(size=(3, 6)) + 0.05,
                    check_params=False)

    def test_sigmoid_gradients(self, rng):
        check_layer(Sigmoid(), rng.normal(size=(3, 6)), check_params=False)

    def test_tanh_gradients(self, rng):
        check_layer(Tanh(), rng.normal(size=(3, 6)), check_params=False)

    def test_softmax_gradients(self, rng):
        check_layer(Softmax(), rng.normal(size=(3, 5)), check_params=False)


class TestNormalizationGradients:
    def test_batchnorm1d_eval_gradients(self, rng):
        layer = BatchNorm1D(5)
        layer.eval()
        check_layer(layer, rng.normal(size=(4, 5)))

    def test_batchnorm1d_train_input_gradients(self, rng):
        layer = BatchNorm1D(4)
        layer.train()
        inputs = rng.normal(size=(6, 4))
        outputs = layer.forward(inputs)
        grad_output = rng.normal(size=outputs.shape)
        layer.zero_grad()
        layer.forward(inputs)
        analytic = layer.backward(grad_output)
        # In training mode the batch statistics change with the input, so
        # the numerical check must re-run training-mode forwards.
        numeric = numerical_input_grad(layer, inputs, grad_output)
        np.testing.assert_allclose(analytic, numeric, atol=5e-4, rtol=5e-4)

    def test_batchnorm2d_eval_gradients(self, rng):
        layer = BatchNorm2D(3)
        layer.eval()
        check_layer(layer, rng.normal(size=(2, 3, 3, 3)))


class TestResidualGradients:
    def test_residual_identity_shortcut(self, rng):
        layer = ResidualBlock(2, 2, stride=1, rng=rng)
        layer.eval()  # freeze batch statistics for a deterministic check
        check_layer(layer, rng.normal(size=(2, 2, 4, 4)), check_params=False,
                    tol=5e-4)

    def test_residual_projection_shortcut(self, rng):
        layer = ResidualBlock(2, 4, stride=2, rng=rng)
        layer.eval()
        check_layer(layer, rng.normal(size=(1, 2, 4, 4)), check_params=False,
                    tol=5e-4)
