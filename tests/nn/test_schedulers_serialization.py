"""Tests for learning-rate schedulers and weight serialization."""

import os

import numpy as np
import pytest

from repro.nn import (CosineDecay, ExponentialDecay, Parameter, SGD,
                      StepDecay, get_scheduler, load_model_into,
                      load_weights, save_model, save_weights)
from repro.nn.serialization import load_metadata

from ..conftest import make_tiny_model


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestStepDecay:
    def test_constant_within_step(self):
        scheduler = StepDecay(make_optimizer(), step_size=5, gamma=0.5)
        assert scheduler.learning_rate_at(4) == pytest.approx(0.1)

    def test_halves_after_step(self):
        scheduler = StepDecay(make_optimizer(), step_size=5, gamma=0.5)
        assert scheduler.learning_rate_at(5) == pytest.approx(0.05)
        assert scheduler.learning_rate_at(10) == pytest.approx(0.025)

    def test_step_updates_optimizer(self):
        optimizer = make_optimizer()
        scheduler = StepDecay(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)
        assert scheduler.current_lr == pytest.approx(0.05)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), gamma=0.0)


class TestExponentialDecay:
    def test_geometric_decay(self):
        scheduler = ExponentialDecay(make_optimizer(), gamma=0.9)
        assert scheduler.learning_rate_at(2) == pytest.approx(0.1 * 0.81)

    def test_gamma_one_is_constant(self):
        scheduler = ExponentialDecay(make_optimizer(), gamma=1.0)
        assert scheduler.learning_rate_at(50) == pytest.approx(0.1)


class TestCosineDecay:
    def test_starts_at_base_rate(self):
        scheduler = CosineDecay(make_optimizer(), total_cycles=10)
        assert scheduler.learning_rate_at(0) == pytest.approx(0.1)

    def test_ends_at_min_lr(self):
        scheduler = CosineDecay(make_optimizer(), total_cycles=10,
                                min_lr=0.01)
        assert scheduler.learning_rate_at(10) == pytest.approx(0.01)

    def test_monotonically_decreasing(self):
        scheduler = CosineDecay(make_optimizer(), total_cycles=20)
        rates = [scheduler.learning_rate_at(cycle) for cycle in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_clamps_beyond_total(self):
        scheduler = CosineDecay(make_optimizer(), total_cycles=5, min_lr=0.0)
        assert scheduler.learning_rate_at(50) == pytest.approx(0.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CosineDecay(make_optimizer(), total_cycles=0)


class TestSchedulerRegistry:
    def test_get_scheduler_by_name(self):
        assert isinstance(get_scheduler("step", make_optimizer()), StepDecay)
        assert isinstance(get_scheduler("cosine", make_optimizer(),
                                        total_cycles=5), CosineDecay)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_scheduler("cyclic", make_optimizer())


class TestSerialization:
    def test_roundtrip_weights(self, tmp_path):
        model = make_tiny_model(seed=1)
        path = os.path.join(tmp_path, "checkpoint.npz")
        save_weights(model.get_weights(), path)
        loaded = load_weights(path)
        for name, value in model.get_weights().items():
            np.testing.assert_array_equal(loaded[name], value)

    def test_save_model_and_load_into(self, tmp_path):
        source = make_tiny_model(seed=1)
        target = make_tiny_model(seed=2)
        path = os.path.join(tmp_path, "model")
        save_model(source, path, metadata={"dataset": "tiny"})
        load_model_into(target, path)
        inputs = np.random.default_rng(0).normal(size=(2, 1, 8, 8))
        np.testing.assert_allclose(source.forward(inputs),
                                   target.forward(inputs))

    def test_metadata_roundtrip(self, tmp_path):
        model = make_tiny_model()
        path = os.path.join(tmp_path, "model")
        save_model(model, path, metadata={"dataset": "tiny"})
        metadata = load_metadata(path)
        assert metadata["dataset"] == "tiny"
        assert metadata["model_name"] == "tiny-mlp"

    def test_empty_weights_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_weights({}, os.path.join(tmp_path, "x.npz"))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_weights(os.path.join(tmp_path, "missing.npz"))
