"""Tests for the Sequential model container."""

import numpy as np
import pytest

from repro.nn import SGD, Sequential, SoftmaxCrossEntropy
from repro.nn.layers import Dense, Flatten, ReLU

from ..conftest import make_tiny_dataset, make_tiny_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestForwardBackward:
    def test_forward_shape(self, rng):
        model = make_tiny_model()
        out = model.forward(rng.normal(size=(5, 1, 8, 8)))
        assert out.shape == (5, 4)

    def test_callable(self, rng):
        model = make_tiny_model()
        inputs = rng.normal(size=(2, 1, 8, 8))
        np.testing.assert_array_equal(model(inputs), model.forward(inputs))

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_train_step_decreases_loss(self):
        dataset = make_tiny_dataset(60, seed=0)
        model = make_tiny_model()
        loss_fn = SoftmaxCrossEntropy()
        optimizer = SGD(model.parameters(), lr=0.2)
        first = model.train_step(dataset.images, dataset.labels, loss_fn,
                                 optimizer)
        for _ in range(20):
            last = model.train_step(dataset.images, dataset.labels, loss_fn,
                                    optimizer)
        assert last < first

    def test_zero_grad(self, rng):
        model = make_tiny_model()
        loss_fn = SoftmaxCrossEntropy()
        logits = model.forward(rng.normal(size=(4, 1, 8, 8)))
        loss_fn.forward(logits, np.zeros(4, dtype=int))
        model.backward(loss_fn.backward())
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestParameters:
    def test_parameter_count_matches_layers(self):
        model = make_tiny_model()
        expected = 64 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4
        assert model.num_parameters() == expected

    def test_named_parameters_unique(self):
        model = make_tiny_model()
        names = list(model.named_parameters())
        assert len(names) == len(set(names))

    def test_named_parameters_disambiguates_duplicates(self, rng):
        model = Sequential([
            Dense(4, 3, rng=rng, name="same"),
            Dense(3, 2, rng=rng, name="same"),
        ])
        names = list(model.named_parameters())
        assert len(names) == 4
        assert len(set(names)) == 4


class TestWeightsRoundtrip:
    def test_get_set_roundtrip(self, rng):
        model_a = make_tiny_model(seed=1)
        model_b = make_tiny_model(seed=2)
        inputs = rng.normal(size=(3, 1, 8, 8))
        assert not np.allclose(model_a.forward(inputs),
                               model_b.forward(inputs))
        model_b.set_weights(model_a.get_weights())
        np.testing.assert_allclose(model_a.forward(inputs),
                                   model_b.forward(inputs))

    def test_get_weights_is_a_copy(self):
        model = make_tiny_model()
        weights = model.get_weights()
        name = next(iter(weights))
        weights[name][:] = 123.0
        assert not np.allclose(model.get_weights()[name], 123.0)

    def test_set_weights_missing_key_raises(self):
        model = make_tiny_model()
        weights = model.get_weights()
        weights.pop(next(iter(weights)))
        with pytest.raises(KeyError):
            model.set_weights(weights)

    def test_set_weights_shape_mismatch_raises(self):
        model = make_tiny_model()
        weights = model.get_weights()
        name = next(iter(weights))
        weights[name] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_get_gradients_shapes(self, rng):
        model = make_tiny_model()
        grads = model.get_gradients()
        weights = model.get_weights()
        assert set(grads) == set(weights)
        for name in grads:
            assert grads[name].shape == weights[name].shape


class TestNeuronStructure:
    def test_neuron_layers_are_dense_layers(self):
        model = make_tiny_model()
        assert [layer.name for layer in model.neuron_layers()] == [
            "fc1", "fc2", "output"]

    def test_neuron_counts(self):
        model = make_tiny_model()
        assert model.neuron_counts() == [16, 8, 4]
        assert model.total_neurons() == 28

    def test_set_and_clear_masks(self):
        model = make_tiny_model()
        masks = {"fc1": np.ones(16, dtype=bool),
                 "fc2": np.zeros(8, dtype=bool)}
        masks["fc2"][:4] = True
        model.set_neuron_masks(masks)
        assert model.active_neuron_fraction() < 1.0
        model.clear_neuron_masks()
        assert model.active_neuron_fraction() == 1.0

    def test_set_masks_unknown_layer_raises(self):
        model = make_tiny_model()
        with pytest.raises(KeyError):
            model.set_neuron_masks({"nope": np.ones(3, dtype=bool)})

    def test_active_fraction_weighted_by_layer_size(self):
        model = make_tiny_model()
        model.set_neuron_masks({"fc1": np.zeros(16, dtype=bool)})
        # fc1 (16 of 28 neurons) fully masked -> fraction = 12/28.
        np.testing.assert_allclose(model.active_neuron_fraction(), 12 / 28)


class TestInference:
    def test_predict_shape_and_range(self, rng):
        model = make_tiny_model()
        predictions = model.predict(rng.normal(size=(10, 1, 8, 8)))
        assert predictions.shape == (10,)
        assert predictions.min() >= 0 and predictions.max() < 4

    def test_predict_restores_training_mode(self, rng):
        model = make_tiny_model()
        model.train()
        model.predict(rng.normal(size=(2, 1, 8, 8)))
        assert model.training

    def test_accuracy_perfect_on_memorized_data(self):
        dataset = make_tiny_dataset(40, seed=3)
        model = make_tiny_model()
        loss_fn = SoftmaxCrossEntropy()
        optimizer = SGD(model.parameters(), lr=0.3)
        for _ in range(60):
            model.train_step(dataset.images, dataset.labels, loss_fn,
                             optimizer)
        assert model.evaluate_accuracy(dataset.images, dataset.labels) > 0.9

    def test_summary_mentions_layers(self):
        summary = make_tiny_model().summary()
        assert "fc1" in summary
        assert "total parameters" in summary

    def test_clone_structure_copies_weights(self, rng):
        model = make_tiny_model(seed=5)
        clone = model.clone_structure(lambda: make_tiny_model(seed=9))
        inputs = rng.normal(size=(2, 1, 8, 8))
        np.testing.assert_allclose(model.forward(inputs),
                                   clone.forward(inputs))
