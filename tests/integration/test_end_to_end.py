"""End-to-end integration tests spanning every subsystem.

These runs use the real synthetic datasets, real CNN/MLP models, the
hardware cost model, the FL engine and the Helios/baseline strategies
together — the same path the benchmark harness takes, at a miniature scale.
"""

import numpy as np
import pytest

from repro.baselines import (AsynchronousFLStrategy, RandomMaskingStrategy,
                             SynchronousFLStrategy)
from repro.core import HeliosConfig, HeliosStrategy
from repro.data import load_synthetic_dataset, partition_iid, partition_shards
from repro.fl import ClientConfig, build_simulation
from repro.hardware import build_fleet
from repro.metrics import speedup_over
from repro.nn.models import build_lenet


def make_mnist_simulation(partition="iid", num_capable=1, num_stragglers=1,
                          seed=0):
    train, test = load_synthetic_dataset("mnist", num_train=240, num_test=80,
                                         seed=seed)
    num_clients = num_capable + num_stragglers
    rng = np.random.default_rng(seed + 1)
    if partition == "iid":
        datasets = partition_iid(train, num_clients, rng)
    else:
        datasets = partition_shards(train, num_clients, 2, rng)
    devices = build_fleet(num_capable, num_stragglers)

    def model_factory():
        return build_lenet(width_multiplier=0.25,
                           rng=np.random.default_rng(seed + 7))

    return build_simulation(
        model_factory, datasets, devices, test, (1, 28, 28),
        client_config=ClientConfig(batch_size=20, learning_rate=0.08),
        workload_scale=60.0, seed=seed)


class TestLeNetCollaboration:
    def test_helios_learns_on_synthetic_mnist(self):
        sim = make_mnist_simulation()
        history = sim.run(HeliosStrategy(HeliosConfig(straggler_top_k=1,
                                                      seed=0)),
                          num_cycles=5)
        # Random guessing is 0.1 on ten classes; a handful of cycles with a
        # half-straggler fleet must already clear it by a wide margin.
        assert history.final_accuracy() > 0.25
        assert history.total_time() > 0

    def test_helios_faster_than_sync_per_cycle(self):
        helios_sim = make_mnist_simulation()
        helios_history = helios_sim.run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=0)),
            num_cycles=3)
        sync_sim = make_mnist_simulation()
        sync_history = sync_sim.run(
            SynchronousFLStrategy(straggler_top_k=1), num_cycles=3)
        # Identical cycle counts; Helios must finish sooner in simulated time.
        assert helios_history.total_time() < sync_history.total_time()

    def test_straggler_trains_partial_model_every_cycle(self):
        sim = make_mnist_simulation()
        history = sim.run(HeliosStrategy(HeliosConfig(straggler_top_k=1,
                                                      seed=0)),
                          num_cycles=3)
        fractions = [record.straggler_fraction_trained
                     for record in history.records]
        assert all(0.0 < fraction < 1.0 for fraction in fractions)

    def test_async_and_random_complete_on_non_iid(self):
        for strategy in (AsynchronousFLStrategy(straggler_top_k=1),
                         RandomMaskingStrategy(straggler_top_k=1)):
            sim = make_mnist_simulation(partition="shards")
            history = sim.run(strategy, num_cycles=3)
            assert len(history) == 3
            assert all(np.isfinite(a) for a in history.accuracies())

    def test_speedup_metric_computable(self):
        helios_history = make_mnist_simulation().run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=0)),
            num_cycles=4)
        sync_history = make_mnist_simulation().run(
            SynchronousFLStrategy(straggler_top_k=1), num_cycles=4)
        target = 0.8 * min(helios_history.best_accuracy(),
                           sync_history.best_accuracy())
        speedup = speedup_over(helios_history, sync_history, target)
        if speedup is not None:
            assert speedup > 1.0


class TestReproducibility:
    def test_same_seed_same_history(self):
        history_a = make_mnist_simulation(seed=3).run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=3)),
            num_cycles=3)
        history_b = make_mnist_simulation(seed=3).run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=3)),
            num_cycles=3)
        np.testing.assert_allclose(history_a.accuracies(),
                                   history_b.accuracies())
        np.testing.assert_allclose(history_a.times_s(), history_b.times_s())

    def test_different_seeds_differ(self):
        history_a = make_mnist_simulation(seed=1).run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=1)),
            num_cycles=3)
        history_b = make_mnist_simulation(seed=2).run(
            HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=2)),
            num_cycles=3)
        assert history_a.accuracies() != history_b.accuracies()
