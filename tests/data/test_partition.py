"""Tests for federated data partitioning."""

import numpy as np
import pytest

from repro.data import (partition_dataset, partition_dirichlet, partition_iid,
                        partition_shards)

from ..conftest import make_tiny_dataset


@pytest.fixture
def dataset():
    return make_tiny_dataset(120, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestIID:
    def test_covers_all_samples(self, dataset, rng):
        parts = partition_iid(dataset, 4, rng)
        assert sum(len(part) for part in parts) == len(dataset)

    def test_roughly_equal_sizes(self, dataset, rng):
        parts = partition_iid(dataset, 4, rng)
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_class_distribution_roughly_uniform(self, dataset, rng):
        parts = partition_iid(dataset, 3, rng)
        for part in parts:
            counts = part.class_counts()
            # Every class should appear on every client for IID data.
            assert np.all(counts > 0)

    def test_too_many_clients_raises(self, rng):
        small = make_tiny_dataset(3, seed=0)
        with pytest.raises(ValueError):
            partition_iid(small, 10, rng)

    def test_invalid_client_count(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_iid(dataset, 0, rng)


class TestShards:
    def test_covers_all_samples(self, dataset, rng):
        parts = partition_shards(dataset, 4, 2, rng)
        assert sum(len(part) for part in parts) == len(dataset)

    def test_clients_see_few_classes(self, dataset, rng):
        parts = partition_shards(dataset, 4, 2, rng)
        classes_per_client = [int(np.count_nonzero(part.class_counts()))
                              for part in parts]
        # With 2 shards per client each client sees at most ~3 classes.
        assert max(classes_per_client) <= 3
        # And the partition is genuinely skewed compared to 4 classes total.
        assert min(classes_per_client) < dataset.num_classes

    def test_no_sample_duplication(self, dataset, rng):
        parts = partition_shards(dataset, 4, 2, rng)
        all_sums = np.concatenate(
            [part.images.reshape(len(part), -1).sum(axis=1)
             for part in parts])
        original = dataset.images.reshape(len(dataset), -1).sum(axis=1)
        np.testing.assert_allclose(np.sort(all_sums), np.sort(original))

    def test_too_many_shards_raises(self, rng):
        small = make_tiny_dataset(5, seed=0)
        with pytest.raises(ValueError):
            partition_shards(small, 4, 2, rng)

    def test_invalid_arguments(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_shards(dataset, 0, 2, rng)


class TestDirichlet:
    def test_covers_every_client(self, dataset, rng):
        parts = partition_dirichlet(dataset, 5, alpha=0.5, rng=rng)
        assert len(parts) == 5
        assert all(len(part) >= 2 for part in parts)

    def test_small_alpha_is_skewed(self, dataset):
        parts = partition_dirichlet(dataset, 4, alpha=0.05,
                                    rng=np.random.default_rng(0))
        # With extreme skew, at least one client should be missing a class.
        missing = [np.any(part.class_counts() == 0) for part in parts]
        assert any(missing)

    def test_large_alpha_is_balanced(self, dataset):
        parts = partition_dirichlet(dataset, 3, alpha=100.0,
                                    rng=np.random.default_rng(0))
        sizes = [len(part) for part in parts]
        assert max(sizes) < 2.5 * min(sizes)

    def test_invalid_alpha(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 3, alpha=0.0, rng=rng)


class TestDispatcher:
    def test_dispatch_iid(self, dataset, rng):
        parts = partition_dataset(dataset, 3, strategy="iid", rng=rng)
        assert len(parts) == 3

    def test_dispatch_shards(self, dataset, rng):
        parts = partition_dataset(dataset, 3, strategy="shards", rng=rng,
                                  shards_per_client=2)
        assert len(parts) == 3

    def test_dispatch_dirichlet(self, dataset, rng):
        parts = partition_dataset(dataset, 3, strategy="dirichlet", rng=rng,
                                  dirichlet_alpha=0.3)
        assert len(parts) == 3

    def test_unknown_strategy(self, dataset, rng):
        with pytest.raises(KeyError):
            partition_dataset(dataset, 3, strategy="powerlaw", rng=rng)

    def test_client_names_are_distinct(self, dataset, rng):
        parts = partition_dataset(dataset, 3, strategy="iid", rng=rng)
        names = {part.name for part in parts}
        assert len(names) == 3
