"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (DATASET_SPECS, available_datasets,
                        load_synthetic_dataset, make_classification_images)
from repro.data.synthetic import SyntheticImageSpec


class TestSpecs:
    def test_three_families_available(self):
        assert set(available_datasets()) == {"mnist", "cifar10", "cifar100"}

    def test_shapes_match_originals(self):
        assert DATASET_SPECS["mnist"].image_shape == (1, 28, 28)
        assert DATASET_SPECS["cifar10"].image_shape == (3, 32, 32)
        assert DATASET_SPECS["cifar100"].image_shape == (3, 32, 32)

    def test_class_counts_match_originals(self):
        assert DATASET_SPECS["mnist"].num_classes == 10
        assert DATASET_SPECS["cifar10"].num_classes == 10
        assert DATASET_SPECS["cifar100"].num_classes == 100


class TestGenerator:
    def test_sample_count_and_shape(self):
        spec = DATASET_SPECS["mnist"]
        dataset = make_classification_images(50, spec,
                                             np.random.default_rng(0))
        assert len(dataset) == 50
        assert dataset.sample_shape == (1, 28, 28)

    def test_labels_in_range(self):
        spec = DATASET_SPECS["cifar10"]
        dataset = make_classification_images(100, spec,
                                             np.random.default_rng(0))
        assert dataset.labels.min() >= 0
        assert dataset.labels.max() < 10

    def test_normalized_statistics(self):
        spec = DATASET_SPECS["mnist"]
        dataset = make_classification_images(200, spec,
                                             np.random.default_rng(0))
        assert abs(dataset.images.mean()) < 1e-6
        assert abs(dataset.images.std() - 1.0) < 1e-6

    def test_deterministic_given_seed(self):
        spec = DATASET_SPECS["mnist"]
        a = make_classification_images(30, spec, np.random.default_rng(7))
        b = make_classification_images(30, spec, np.random.default_rng(7))
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        spec = DATASET_SPECS["mnist"]
        a = make_classification_images(30, spec, np.random.default_rng(1))
        b = make_classification_images(30, spec, np.random.default_rng(2))
        assert not np.allclose(a.images, b.images)

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            make_classification_images(0, DATASET_SPECS["mnist"],
                                       np.random.default_rng(0))

    def test_classes_are_separable(self):
        """A nearest-class-mean classifier must beat chance comfortably."""
        spec = SyntheticImageSpec(
            name="sep-check", image_shape=(1, 16, 16), num_classes=4,
            separation=0.8, noise_std=0.8, max_shift=0, label_noise=0.0,
            prototypes_per_class=1, smoothness=4)
        rng = np.random.default_rng(0)
        train = make_classification_images(400, spec, rng)
        flat = train.images.reshape(len(train), -1)
        means = np.stack([flat[train.labels == c].mean(axis=0)
                          for c in range(4)])
        distances = ((flat[:, None, :] - means[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == train.labels).mean()
        assert accuracy > 0.6

    def test_label_noise_flips_some_labels(self):
        base = DATASET_SPECS["mnist"]
        noisy_spec = SyntheticImageSpec(
            name="noisy", image_shape=base.image_shape,
            num_classes=base.num_classes, separation=base.separation,
            noise_std=base.noise_std, max_shift=0, label_noise=0.5,
            prototypes_per_class=1, smoothness=base.smoothness)
        clean_spec = SyntheticImageSpec(
            name="clean", image_shape=base.image_shape,
            num_classes=base.num_classes, separation=base.separation,
            noise_std=base.noise_std, max_shift=0, label_noise=0.0,
            prototypes_per_class=1, smoothness=base.smoothness)
        noisy = make_classification_images(300, noisy_spec,
                                           np.random.default_rng(5))
        clean = make_classification_images(300, clean_spec,
                                           np.random.default_rng(5))
        assert np.any(noisy.labels != clean.labels)


class TestLoader:
    def test_train_test_sizes(self):
        train, test = load_synthetic_dataset("mnist", num_train=120,
                                             num_test=30, seed=0)
        assert len(train) == 120
        assert len(test) == 30

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_synthetic_dataset("imagenet")

    def test_train_and_test_share_distribution(self):
        train, test = load_synthetic_dataset("mnist", num_train=200,
                                             num_test=100, seed=3)
        # Same prototypes: per-pixel means should be close.
        assert abs(train.images.mean() - test.images.mean()) < 0.1

    def test_reproducible_across_calls(self):
        train_a, _ = load_synthetic_dataset("cifar10", num_train=50,
                                            num_test=10, seed=11)
        train_b, _ = load_synthetic_dataset("cifar10", num_train=50,
                                            num_test=10, seed=11)
        np.testing.assert_array_equal(train_a.images, train_b.images)

    def test_cifar100_has_100_classes(self):
        train, _ = load_synthetic_dataset("cifar100", num_train=300,
                                          num_test=50, seed=0)
        assert train.num_classes == 100
