"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset

from ..conftest import make_tiny_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def small_dataset(n=20, classes=4, rng=None):
    rng = rng or np.random.default_rng(0)
    return Dataset(images=rng.normal(size=(n, 1, 4, 4)),
                   labels=rng.integers(0, classes, n),
                   num_classes=classes, name="small")


class TestValidation:
    def test_valid_construction(self, rng):
        dataset = small_dataset(rng=rng)
        assert len(dataset) == 20
        assert dataset.sample_shape == (1, 4, 4)

    def test_rejects_non_4d_images(self, rng):
        with pytest.raises(ValueError):
            Dataset(images=rng.normal(size=(10, 16)),
                    labels=np.zeros(10, dtype=int), num_classes=2)

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dataset(images=rng.normal(size=(10, 1, 4, 4)),
                    labels=np.zeros(8, dtype=int), num_classes=2)

    def test_rejects_out_of_range_labels(self, rng):
        with pytest.raises(ValueError):
            Dataset(images=rng.normal(size=(4, 1, 2, 2)),
                    labels=np.array([0, 1, 2, 5]), num_classes=3)

    def test_rejects_nonpositive_classes(self, rng):
        with pytest.raises(ValueError):
            Dataset(images=rng.normal(size=(4, 1, 2, 2)),
                    labels=np.zeros(4, dtype=int), num_classes=0)


class TestSubsetsAndSplits:
    def test_subset_selects_samples(self, rng):
        dataset = small_dataset(rng=rng)
        subset = dataset.subset([0, 2, 4])
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels,
                                      dataset.labels[[0, 2, 4]])

    def test_subset_keeps_num_classes(self, rng):
        dataset = small_dataset(rng=rng)
        assert dataset.subset([0]).num_classes == dataset.num_classes

    def test_shuffled_preserves_pairs(self, rng):
        dataset = small_dataset(rng=rng)
        shuffled = dataset.shuffled(np.random.default_rng(1))
        # Every (image, label) pair must still exist.
        original_sums = np.sort(dataset.images.sum(axis=(1, 2, 3)))
        shuffled_sums = np.sort(shuffled.images.sum(axis=(1, 2, 3)))
        np.testing.assert_allclose(original_sums, shuffled_sums)

    def test_split_fractions(self, rng):
        dataset = small_dataset(n=100, rng=rng)
        left, right = dataset.split(0.7, rng=np.random.default_rng(1))
        assert len(left) == 70
        assert len(right) == 30

    def test_split_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            small_dataset(rng=rng).split(1.0)

    def test_class_counts(self):
        dataset = Dataset(images=np.zeros((5, 1, 2, 2)),
                          labels=np.array([0, 0, 1, 2, 2]), num_classes=4)
        np.testing.assert_array_equal(dataset.class_counts(), [2, 1, 2, 0])


class TestBatches:
    def test_batches_cover_all_samples(self, rng):
        dataset = small_dataset(n=23, rng=rng)
        total = sum(len(labels) for _, labels in dataset.batches(5))
        assert total == 23

    def test_drop_last(self, rng):
        dataset = small_dataset(n=23, rng=rng)
        total = sum(len(labels)
                    for _, labels in dataset.batches(5, drop_last=True))
        assert total == 20

    def test_batch_shapes(self, rng):
        dataset = small_dataset(n=10, rng=rng)
        images, labels = next(iter(dataset.batches(4)))
        assert images.shape == (4, 1, 4, 4)
        assert labels.shape == (4,)

    def test_shuffling_changes_order(self):
        dataset = make_tiny_dataset(60, seed=0)
        first = next(iter(dataset.batches(10,
                                          rng=np.random.default_rng(1))))[1]
        second = next(iter(dataset.batches(10)))[1]
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(small_dataset(rng=rng).batches(0))
