"""Wire-kind checker: the registry must stay total across the layers."""

from __future__ import annotations

from repro.analysis import WireKindChecker

from .conftest import codes

CODEC_OK = """
KIND_PING = "ping"
KIND_PONG = "pong"
KIND_RUN = "run"

WIRE_KINDS: dict = {
    KIND_PING: "control",
    KIND_PONG: "reply",
    KIND_RUN: "request",
}
"""

TRANSPORT_OK = """
from codec import KIND_PING, KIND_PONG


def loop(kind):
    if kind == KIND_PING:
        return (KIND_PONG, {})
    return None
"""

EXECUTOR_OK = """
from codec import KIND_RUN


def dispatch(kind, payload):
    if kind == KIND_RUN:
        return payload
    return None
"""


def _lint(lint, codec=CODEC_OK, transport=TRANSPORT_OK,
          executor=EXECUTOR_OK):
    return lint({"codec.py": codec, "transport.py": transport,
                 "executor.py": executor}, [WireKindChecker()])


class TestCleanRegistry:
    def test_fully_wired_registry_is_quiet(self, lint):
        assert _lint(lint) == []

    def test_annotated_assignment_form_is_recognized(self, lint):
        # The real codec spells it ``WIRE_KINDS: Dict[str, str] = {…}``;
        # a plain assignment must parse identically.
        plain = CODEC_OK.replace("WIRE_KINDS: dict =", "WIRE_KINDS =")
        assert _lint(lint, codec=plain) == []


class TestMissingOrMalformed:
    def test_absent_registry_fires_w201(self, lint):
        codec = "KIND_PING = \"ping\"\n"
        transport = "def loop(kind):\n    return kind == \"ping\"\n"
        findings = _lint(lint, codec=codec, transport=transport,
                         executor="")
        assert "REPRO-W201" in codes(findings)
        assert any("not found" in f.message for f in findings)

    def test_bad_role_value_fires_w201(self, lint):
        codec = CODEC_OK.replace('KIND_PING: "control"', "KIND_PING: 7")
        findings = _lint(lint, codec=codec)
        assert "REPRO-W201" in codes(findings)

    def test_non_dict_registry_fires_w201(self, lint):
        codec = ("KIND_PING = \"ping\"\n"
                 "WIRE_KINDS = [\"ping\"]\n")
        findings = _lint(lint, codec=codec,
                         transport="", executor="")
        assert codes(findings) == ["REPRO-W201"]


class TestUnknownKinds:
    def test_deleting_a_registered_kind_fires_w202(self, lint):
        # Acceptance criterion: remove ``run`` from the registry while
        # executor.py still dispatches on it.
        codec = CODEC_OK.replace('    KIND_RUN: "request",\n', "")
        findings = _lint(lint, codec=codec)
        w202 = [f for f in findings if f.code == "REPRO-W202"]
        assert w202, codes(findings)
        assert any(f.path == "executor.py" and "'run'" in f.message
                   for f in w202)
        assert all(f.severity == "error" for f in w202)

    def test_unregistered_kind_string_fires_w202(self, lint):
        # Acceptance criterion: a new kind spoken in one layer only.
        executor = EXECUTOR_OK + ("\n\ndef probe(kind):\n"
                                  "    return kind == \"snapshot\"\n")
        findings = _lint(lint, executor=executor)
        assert codes(findings) == ["REPRO-W202"]
        assert "'snapshot'" in findings[0].message

    def test_kind_keyword_arguments_are_sites(self, lint):
        executor = EXECUTOR_OK + ("\n\ndef send(encode):\n"
                                  "    return encode(kind=\"snapshot\")\n")
        findings = _lint(lint, executor=executor)
        assert codes(findings) == ["REPRO-W202"]

    def test_membership_tests_are_sites(self, lint):
        transport = TRANSPORT_OK + ("\n\ndef is_control(kind):\n"
                                    "    return kind in (\"ping\", "
                                    "\"snapshot\")\n")
        findings = _lint(lint, transport=transport)
        assert "REPRO-W202" in codes(findings)


class TestLiteralsAndDeadEntries:
    def test_raw_literal_of_registered_kind_fires_w203(self, lint):
        executor = EXECUTOR_OK.replace("kind == KIND_RUN",
                                       "kind == \"run\"")
        findings = _lint(lint, executor=executor)
        assert codes(findings) == ["REPRO-W203"]
        assert findings[0].severity == "warning"

    def test_literals_inside_the_registry_module_are_fine(self, lint):
        codec = CODEC_OK + ("\n\ndef is_request(kind):\n"
                            "    return kind == \"run\"\n")
        assert _lint(lint, codec=codec) == []

    def test_unreferenced_registry_entry_fires_w204(self, lint):
        transport = TRANSPORT_OK.replace("return (KIND_PONG, {})",
                                         "return None")
        findings = _lint(lint, transport=transport)
        assert codes(findings) == ["REPRO-W204"]
        assert findings[0].path == "codec.py"
        assert "'pong'" in findings[0].message


class TestScope:
    def test_non_layer_modules_are_ignored(self, lint):
        findings = lint({
            "codec.py": CODEC_OK,
            "transport.py": TRANSPORT_OK,
            "executor.py": EXECUTOR_OK,
            "helpers.py": "def f(kind):\n    return kind == \"bogus\"\n",
        }, [WireKindChecker()])
        assert findings == []

    def test_without_the_registry_module_nothing_runs(self, lint):
        findings = lint({"transport.py": TRANSPORT_OK},
                        [WireKindChecker()])
        assert findings == []
