"""Event-loop checker: no blocking calls on the shard-server loop."""

from __future__ import annotations

from repro.analysis import EventLoopChecker

from .conftest import codes

LOOP_PREAMBLE = """
import selectors
import socket
import threading
import time


"""


def _lint_transport(lint, body):
    return lint({"transport.py": LOOP_PREAMBLE + body},
                [EventLoopChecker()])


class TestBlockingCalls:
    def test_time_sleep_on_the_loop_fires_b301(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self):
        self._selector = selectors.DefaultSelector()

    def serve(self):
        while True:
            self._selector.select(1.0)
            time.sleep(0.1)
""")
        assert codes(findings) == ["REPRO-B301"]
        assert "Server.serve" in findings[0].message

    def test_blocking_recv_without_deadline_fires_b302(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self, sock):
        self._selector = selectors.DefaultSelector()
        self.sock = sock

    def serve(self):
        self._selector.select(1.0)
        return self.sock.recv(4096)
""")
        assert codes(findings) == ["REPRO-B302"]
        assert "setblocking" in findings[0].message

    def test_file_io_on_the_loop_fires_b303(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def serve(self):
        self._selector = selectors.DefaultSelector()
        while True:
            self._selector.select(1.0)
            with open("/tmp/audit.log") as handle:
                handle.read()
""")
        assert codes(findings) == ["REPRO-B303"]


class TestNonBlockingSockets:
    def test_setblocking_false_clears_the_socket(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self, sock):
        self._selector = selectors.DefaultSelector()
        sock.setblocking(False)
        self.sock = sock

    def serve(self):
        self._selector.select(1.0)
        return self.sock.recv(4096)
""")
        assert findings == []

    def test_finite_settimeout_clears_the_socket(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self, sock):
        self._selector = selectors.DefaultSelector()
        sock.settimeout(5.0)
        self.sock = sock

    def serve(self):
        self._selector.select(1.0)
        return self.sock.recv(4096)
""")
        assert findings == []

    def test_settimeout_none_does_not_clear(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self, sock):
        self._selector = selectors.DefaultSelector()
        sock.settimeout(None)
        self.sock = sock

    def serve(self):
        self._selector.select(1.0)
        return self.sock.recv(4096)
""")
        assert codes(findings) == ["REPRO-B302"]


class TestReachability:
    def test_thread_offloaded_methods_are_out_of_scope(self, lint):
        findings = _lint_transport(lint, """
class Server:
    def __init__(self):
        self._selector = selectors.DefaultSelector()
        threading.Thread(target=self._worker_main, daemon=True).start()

    def serve(self):
        self._selector.select(1.0)

    def _worker_main(self):
        while True:
            time.sleep(1.0)
""")
        assert findings == []

    def test_helpers_called_from_the_loop_are_in_scope(self, lint):
        findings = _lint_transport(lint, """
def _flush(sock, data):
    sock.sendall(data)


class Server:
    def serve(self):
        self._selector = selectors.DefaultSelector()
        self._selector.select(1.0)
        _flush(self.conn, b"x")
""")
        assert codes(findings) == ["REPRO-B302"]
        assert "sendall" in findings[0].message

    def test_loop_constructed_classes_join_the_walk(self, lint):
        findings = _lint_transport(lint, """
class Connection:
    def __init__(self, sock):
        self.sock = sock

    def pump(self):
        return self.sock.recv(4096)


class Server:
    def serve(self):
        self._selector = selectors.DefaultSelector()
        self._selector.select(1.0)
        conn = Connection(self.listener)
        return conn.pump()
""")
        assert codes(findings) == ["REPRO-B302"]


class TestScope:
    def test_modules_without_a_selector_loop_are_quiet(self, lint):
        findings = _lint_transport(lint, """
class Client:
    def fetch(self, sock):
        return sock.recv(4096)
""")
        assert findings == []

    def test_non_target_modules_are_out_of_scope(self, lint):
        findings = lint({"other.py": LOOP_PREAMBLE + """
class Server:
    def serve(self):
        self._selector = selectors.DefaultSelector()
        self._selector.select(1.0)
        time.sleep(1.0)
"""}, [EventLoopChecker()])
        assert findings == []

    def test_real_transport_module_is_clean(self):
        from pathlib import Path

        import repro.fl.transport as transport
        from repro.analysis.engine import parse_modules, run_checkers

        modules, errors = parse_modules([Path(transport.__file__)])
        assert errors == []
        assert run_checkers(modules, [EventLoopChecker()]) == []
