"""Determinism checker: known-bad fixtures fire, clean idioms stay quiet."""

from __future__ import annotations

import pytest

from repro.analysis import DeterminismChecker

from .conftest import codes


def _lint_executor(lint, body):
    return lint({"executor.py": body}, [DeterminismChecker()])


class TestWallClock:
    def test_time_time_fires_d101_at_the_call_line(self, lint):
        findings = _lint_executor(lint, """
            import time

            def stamp():
                return time.time()
            """)
        assert codes(findings) == ["REPRO-D101"]
        assert findings[0].line == 5
        assert "time.time" in findings[0].message

    @pytest.mark.parametrize("call", [
        "time.monotonic()", "time.perf_counter()", "time.time_ns()",
        "datetime.datetime.now()",
    ])
    def test_other_clocks_fire_d101(self, lint, call):
        findings = _lint_executor(lint, f"""
            import time
            import datetime

            def stamp():
                return {call}
            """)
        assert codes(findings) == ["REPRO-D101"]

    def test_aliased_import_still_resolves(self, lint):
        findings = _lint_executor(lint, """
            from time import perf_counter as tick

            def stamp():
                return tick()
            """)
        assert codes(findings) == ["REPRO-D101"]


class TestGlobalRng:
    def test_module_level_numpy_random_fires_d102(self, lint):
        findings = _lint_executor(lint, """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """)
        assert codes(findings) == ["REPRO-D102"]

    def test_stdlib_random_fires_d102(self, lint):
        findings = _lint_executor(lint, """
            import random

            def draw():
                return random.random()
            """)
        assert codes(findings) == ["REPRO-D102"]

    def test_seeded_default_rng_is_clean(self, lint):
        findings = _lint_executor(lint, """
            import numpy as np

            def draw(seed, n):
                return np.random.default_rng(seed).random(n)
            """)
        assert findings == []

    def test_unseeded_default_rng_fires_d102(self, lint):
        findings = _lint_executor(lint, """
            import numpy as np

            def draw(n):
                return np.random.default_rng().random(n)
            """)
        assert codes(findings) == ["REPRO-D102"]


class TestSetOrdering:
    def test_iterating_a_set_literal_fires_d103(self, lint):
        findings = _lint_executor(lint, """
            def visit(a, b):
                for item in {a, b}:
                    print(item)
            """)
        assert codes(findings) == ["REPRO-D103"]

    def test_list_of_set_call_fires_d103(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return list(set(items))
            """)
        assert codes(findings) == ["REPRO-D103"]

    def test_comprehension_over_set_fires_d103(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return [x + 1 for x in set(items)]
            """)
        assert codes(findings) == ["REPRO-D103"]

    def test_sorted_set_is_clean(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return sorted(set(items))
            """)
        assert findings == []


class TestIdOrdering:
    def test_sorted_keyed_on_id_fires_d104(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return sorted(items, key=id)
            """)
        assert codes(findings) == ["REPRO-D104"]

    def test_lambda_id_key_fires_d104(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return sorted(items, key=lambda x: id(x))
            """)
        assert codes(findings) == ["REPRO-D104"]

    def test_plain_sort_is_clean(self, lint):
        findings = _lint_executor(lint, """
            def order(items):
                return sorted(items, key=str)
            """)
        assert findings == []


class TestEntropy:
    @pytest.mark.parametrize("call,module", [
        ("os.urandom(8)", "os"),
        ("uuid.uuid4()", "uuid"),
        ("secrets.token_hex(4)", "secrets"),
    ])
    def test_os_entropy_fires_d105(self, lint, call, module):
        findings = _lint_executor(lint, f"""
            import {module}

            def token():
                return {call}
            """)
        assert codes(findings) == ["REPRO-D105"]


class TestScope:
    def test_non_target_modules_are_out_of_scope(self, lint):
        findings = lint({"helpers.py": """
            import time

            def stamp():
                return time.time()
            """}, [DeterminismChecker()])
        assert findings == []

    @pytest.mark.parametrize("name", [
        "executor.py", "fusion.py", "aggregation.py", "codec.py",
        "arena.py",
    ])
    def test_every_critical_module_is_in_scope(self, lint, name):
        findings = lint({name: """
            import time

            def stamp():
                return time.time()
            """}, [DeterminismChecker()])
        assert codes(findings) == ["REPRO-D101"]

    def test_allow_comment_silences_with_category(self, lint):
        findings = _lint_executor(lint, """
            import time

            def stamp():
                return time.time()  # lint: allow[determinism] - timeout
            """)
        assert findings == []
