"""Fixtures for the ``repro lint`` checker tests.

Each test writes a tiny synthetic module tree into ``tmp_path`` (the
checkers scope on basenames, so a fixture file named ``executor.py`` is
treated as the real one) and runs a checker set over it.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.engine import parse_modules, run_checkers


@pytest.fixture
def lint(tmp_path):
    """Write ``{name: source}`` files, run ``checkers``, return findings."""

    def _lint(files, checkers):
        for name, source in files.items():
            target = tmp_path / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        modules, errors = parse_modules([tmp_path], repo_root=tmp_path)
        return list(errors) + run_checkers(modules, checkers)

    return _lint


def codes(findings):
    """The finding codes, in report order."""
    return [finding.code for finding in findings]
