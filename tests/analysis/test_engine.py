"""Engine mechanics: findings, suppressions, baseline, report."""

from __future__ import annotations

import json

import pytest

from repro.analysis import SwallowChecker
from repro.analysis.engine import (Finding, LintReport, apply_baseline,
                                   baseline_payload, build_report,
                                   import_aliases, load_baseline,
                                   parse_modules, resolve_call_name,
                                   run_checkers, write_baseline)

from .conftest import codes


def _finding(path="a.py", line=3, code="REPRO-E401", message="m",
             severity="warning", checker="swallow"):
    return Finding(path=path, line=line, code=code, message=message,
                   severity=severity, checker=checker)


class TestFinding:
    def test_render_is_path_line_code_message(self):
        finding = _finding()
        assert finding.render() == "a.py:3: REPRO-E401 m"

    def test_key_ignores_line(self):
        assert _finding(line=3).key == _finding(line=99).key

    def test_as_json_carries_baselined_flag(self):
        payload = _finding().as_json(baselined=True)
        assert payload["baselined"] is True
        assert payload["code"] == "REPRO-E401"
        assert payload["line"] == 3


class TestParsing:
    def test_unparsable_file_becomes_x001_not_a_crash(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        modules, errors = parse_modules([tmp_path], repo_root=tmp_path)
        assert modules == []
        assert codes(errors) == ["REPRO-X001"]

    def test_display_paths_are_repo_relative(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        modules, _ = parse_modules([tmp_path], repo_root=tmp_path)
        assert [m.path for m in modules] == ["pkg/mod.py"]

    def test_alias_resolution_canonicalizes_roots(self):
        import ast
        tree = ast.parse("import numpy as np\n"
                         "from time import sleep as pause\n")
        aliases = import_aliases(tree)
        call = ast.parse("np.random.rand()").body[0].value
        assert resolve_call_name(call.func, aliases) == "numpy.random.rand"
        call = ast.parse("pause(1)").body[0].value
        assert resolve_call_name(call.func, aliases) == "time.sleep"


SWALLOW = """
def teardown(conn):
    try:
        conn.close()
    except Exception:{comment}
        pass
"""


class TestSuppression:
    @pytest.mark.parametrize("comment", [
        "  # lint: allow[swallow]",
        "  # lint: allow[REPRO-E401]",
        "  # lint: allow[repro-e401] - reason text after",
        "  # lint: allow[determinism, swallow]",
    ])
    def test_allow_comment_on_except_line_silences(self, lint, comment):
        findings = lint({"mod.py": SWALLOW.format(comment=comment)},
                        [SwallowChecker()])
        assert findings == []

    @pytest.mark.parametrize("comment", [
        "",
        "  # lint: allow[determinism]",
        "  # allow[swallow]",
    ])
    def test_wrong_or_missing_token_does_not_silence(self, lint, comment):
        findings = lint({"mod.py": SWALLOW.format(comment=comment)},
                        [SwallowChecker()])
        assert codes(findings) == ["REPRO-E401"]

    def test_comment_on_a_different_line_does_not_silence(self, lint):
        source = ("# lint: allow[swallow]\n"
                  "def teardown(conn):\n"
                  "    try:\n"
                  "        conn.close()\n"
                  "    except Exception:\n"
                  "        pass\n")
        findings = lint({"mod.py": source}, [SwallowChecker()])
        assert codes(findings) == ["REPRO-E401"]


class TestRunCheckers:
    def test_findings_sorted_and_deduplicated(self, tmp_path):
        class Repeater:
            name = "rep"

            def check_module(self, module):
                yield _finding(path=module.path, line=2, code="Z")
                yield _finding(path=module.path, line=1, code="A")
                yield _finding(path=module.path, line=1, code="A")

            def check_project(self, modules):
                return iter(())

        (tmp_path / "m.py").write_text("x = 1\ny = 2\n")
        modules, _ = parse_modules([tmp_path], repo_root=tmp_path)
        findings = run_checkers(modules, [Repeater()])
        assert [(f.line, f.code) for f in findings] == [(1, "A"), (2, "Z")]


class TestBaseline:
    def test_round_trip_collapses_duplicates_into_counts(self, tmp_path):
        findings = [_finding(line=1), _finding(line=9), _finding(code="X")]
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        payload = json.loads(path.read_text())
        by_code = {entry["code"]: entry for entry in payload["findings"]}
        assert by_code["REPRO-E401"]["count"] == 2
        assert "count" not in by_code["X"]
        counts = load_baseline(path)
        assert counts[("a.py", "REPRO-E401", "m")] == 2
        assert counts[("a.py", "X", "m")] == 1

    def test_payload_is_deterministic(self):
        forward = [_finding(code=c) for c in ("B", "A", "C")]
        assert (baseline_payload(forward)
                == baseline_payload(list(reversed(forward))))
        assert [e["code"] for e in baseline_payload(forward)["findings"]] \
            == ["A", "B", "C"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_corrupt_baseline_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_apply_baseline_is_multiset_consumption(self):
        findings = [_finding(line=1), _finding(line=2), _finding(line=3)]
        baseline = {findings[0].key: 2, ("b.py", "X", "m"): 1}
        new, baselined, stale = apply_baseline(findings, baseline)
        assert len(baselined) == 2
        assert len(new) == 1
        assert stale == 1


class TestReport:
    def test_report_fails_only_on_new_findings(self):
        finding = _finding()
        clean = build_report([finding], {finding.key: 1})
        assert not clean.failed
        dirty = build_report([finding], {})
        assert dirty.failed

    def test_as_json_summary_and_baselined_flags(self):
        first, second = _finding(line=1), _finding(line=2)
        report = build_report([first, second], {first.key: 1})
        payload = report.as_json()
        assert payload["summary"] == {"total": 2, "new": 1,
                                      "baselined": 1, "stale_baseline": 0}
        assert [e["baselined"] for e in payload["findings"]] == [True, False]
        assert isinstance(report, LintReport)
