"""Whole-repo smoke: ``repro lint`` gates the real tree, end to end."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import repro.fl.codec as codec_module
import repro.fl.executor as executor_module
import repro.fl.transport as transport_module
from repro.analysis.cli import run_lint
from repro.cli import main

FL_MODULES = (codec_module, transport_module, executor_module)


def _copy_wire_layers(tmp_path: Path) -> Path:
    tree = tmp_path / "layers"
    tree.mkdir()
    for module in FL_MODULES:
        shutil.copy(module.__file__, tree / Path(module.__file__).name)
    return tree


class TestRepoIsClean:
    def test_lint_exits_zero_against_the_committed_baseline(self, capsys):
        assert run_lint() == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_json_report_has_no_new_findings(self, capsys):
        assert run_lint(output_format="json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 0

    def test_cli_subcommand_is_wired(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 0


class TestAcceptance:
    """The ISSUE's acceptance criteria, against copies of the real tree."""

    def test_deleting_a_kind_from_wire_kinds_fails_lint(self, tmp_path,
                                                        capsys):
        tree = _copy_wire_layers(tmp_path)
        codec_copy = tree / "codec.py"
        source = codec_copy.read_text()
        assert '    KIND_MAP: "request",\n' in source
        codec_copy.write_text(
            source.replace('    KIND_MAP: "request",\n', ""))
        exit_code = run_lint([str(tree)],
                             baseline=str(tmp_path / "empty.json"))
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "REPRO-W202" in out
        assert "'map'" in out

    def test_unregistered_kind_in_executor_fails_lint(self, tmp_path,
                                                      capsys):
        tree = _copy_wire_layers(tmp_path)
        executor_copy = tree / "executor.py"
        executor_copy.write_text(
            executor_copy.read_text()
            + "\n\ndef _probe(kind):\n    return kind == \"snapshot\"\n")
        exit_code = run_lint([str(tree)],
                             baseline=str(tmp_path / "empty.json"))
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "REPRO-W202" in out
        assert "'snapshot'" in out

    def test_pristine_copies_pass_with_an_empty_baseline(self, tmp_path,
                                                         capsys):
        # The wire layers themselves carry no findings: the committed
        # baseline is empty, not load-bearing.
        tree = _copy_wire_layers(tmp_path)
        exit_code = run_lint([str(tree)],
                             baseline=str(tmp_path / "empty.json"))
        capsys.readouterr()
        assert exit_code == 0


class TestBaselineWorkflow:
    BAD = ("import time\n\n\n"
           "def stamp():\n"
           "    return time.time()\n")

    def test_fix_baseline_then_clean_run(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "executor.py").write_text(self.BAD)
        baseline = tmp_path / "baseline.json"

        assert run_lint([str(tree)], baseline=str(baseline)) == 1
        capsys.readouterr()

        assert run_lint([str(tree)], baseline=str(baseline),
                        fix_baseline=True) == 0
        capsys.readouterr()

        assert run_lint([str(tree)], baseline=str(baseline)) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_fix_baseline_is_deterministic(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "executor.py").write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        run_lint([str(tree)], baseline=str(baseline), fix_baseline=True)
        first = baseline.read_text()
        run_lint([str(tree)], baseline=str(baseline), fix_baseline=True)
        capsys.readouterr()
        assert baseline.read_text() == first
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["findings"][0]["code"] == "REPRO-D101"

    def test_new_finding_on_top_of_baseline_fails(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "executor.py").write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        run_lint([str(tree)], baseline=str(baseline), fix_baseline=True)
        (tree / "executor.py").write_text(
            self.BAD + "\n\ndef entropy():\n    import os\n"
                       "    return os.urandom(8)\n")
        assert run_lint([str(tree)], baseline=str(baseline)) == 1
        out = capsys.readouterr().out
        assert "REPRO-D105" in out

    def test_stale_baseline_is_reported_not_fatal(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "executor.py").write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        run_lint([str(tree)], baseline=str(baseline), fix_baseline=True)
        (tree / "executor.py").write_text("x = 1\n")
        assert run_lint([str(tree)], baseline=str(baseline)) == 0
        out = capsys.readouterr().out
        assert "stale baseline" in out

    def test_output_file_receives_the_report(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "clean.py").write_text("x = 1\n")
        report_path = tmp_path / "report.json"
        assert run_lint([str(tree)],
                        baseline=str(tmp_path / "empty.json"),
                        output_format="json",
                        output=str(report_path)) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["summary"]["total"] == 0

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert run_lint([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err
