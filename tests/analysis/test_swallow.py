"""Swallow checker: silent broad handlers fire, diagnosed ones don't."""

from __future__ import annotations

import pytest

from repro.analysis import SwallowChecker

from .conftest import codes


def _lint_mod(lint, body):
    return lint({"mod.py": body}, [SwallowChecker()])


class TestSilentPass:
    def test_except_exception_pass_fires_e401(self, lint):
        findings = _lint_mod(lint, """
            def teardown(conn):
                try:
                    conn.close()
                except Exception:
                    pass
            """)
        assert codes(findings) == ["REPRO-E401"]
        assert findings[0].line == 5
        assert findings[0].severity == "warning"

    @pytest.mark.parametrize("clause", [
        "except:",
        "except BaseException:",
        "except (ValueError, Exception):",
    ])
    def test_other_broad_forms_fire_e401(self, lint, clause):
        findings = _lint_mod(lint, f"""
            def teardown(conn):
                try:
                    conn.close()
                {clause}
                    pass
            """)
        assert codes(findings) == ["REPRO-E401"]

    def test_bare_continue_fires_e402(self, lint):
        findings = _lint_mod(lint, """
            def drain(conns):
                for conn in conns:
                    try:
                        conn.close()
                    except Exception:
                        continue
            """)
        assert codes(findings) == ["REPRO-E402"]


class TestAcceptedHandlers:
    def test_narrow_handlers_are_fine(self, lint):
        findings = _lint_mod(lint, """
            def teardown(conn):
                try:
                    conn.close()
                except OSError:
                    pass
            """)
        assert findings == []

    def test_a_handler_that_logs_is_fine(self, lint):
        findings = _lint_mod(lint, """
            import sys

            def teardown(conn):
                try:
                    conn.close()
                except Exception as exc:
                    print(f"swallowed: {exc!r}", file=sys.stderr)
            """)
        assert findings == []

    def test_a_handler_that_reraises_is_fine(self, lint):
        findings = _lint_mod(lint, """
            def teardown(conn):
                try:
                    conn.close()
                except Exception:
                    raise
            """)
        assert findings == []

    def test_continue_after_logging_is_fine(self, lint):
        findings = _lint_mod(lint, """
            def drain(conns, log):
                for conn in conns:
                    try:
                        conn.close()
                    except Exception as exc:
                        log(exc)
                        continue
            """)
        assert findings == []


class TestExecutorDiagnostics:
    """The PR's satellite fix: executor teardown paths now diagnose."""

    def test_executor_has_no_silent_swallows_left(self):
        from pathlib import Path

        import repro.fl.executor as executor
        from repro.analysis.engine import parse_modules, run_checkers

        modules, errors = parse_modules([Path(executor.__file__)])
        assert errors == []
        assert run_checkers(modules, [SwallowChecker()]) == []

    def test_note_swallowed_writes_one_stderr_line(self, capsys):
        from repro.fl.executor import _note_swallowed

        _note_swallowed("testing the helper", RuntimeError("boom"))
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "testing the helper" in err
        assert "boom" in err
