"""Resource checker: acquisitions must visibly hand off their lifetime."""

from __future__ import annotations

import pytest

from repro.analysis import ResourceChecker

from .conftest import codes


def _lint_mod(lint, body):
    return lint({"mod.py": body}, [ResourceChecker()])


class TestLeaks:
    def test_unmanaged_shared_memory_fires_r501(self, lint):
        findings = _lint_mod(lint, """
            from multiprocessing.shared_memory import SharedMemory

            def scratch():
                shm = SharedMemory(create=True, size=64)
                shm.buf[0] = 1
            """)
        assert codes(findings) == ["REPRO-R501"]
        assert "SharedMemory" in findings[0].message

    def test_unmanaged_socket_fires_r501(self, lint):
        findings = _lint_mod(lint, """
            import socket

            def probe(addr):
                sock = socket.create_connection(addr)
                sock.sendall(b"ping")
            """)
        assert codes(findings) == ["REPRO-R501"]

    def test_self_storage_without_teardown_fires_r501(self, lint):
        findings = _lint_mod(lint, """
            from repro.fl.codec import DeltaEncoderState

            class Holder:
                def __init__(self):
                    self._state = DeltaEncoderState()
            """)
        assert codes(findings) == ["REPRO-R501"]


class TestAcceptedLifetimes:
    def test_with_block_is_managed(self, lint):
        findings = _lint_mod(lint, """
            import socket

            def probe(addr):
                with socket.create_connection(addr) as sock:
                    sock.sendall(b"ping")
            """)
        assert findings == []

    def test_try_finally_is_managed(self, lint):
        findings = _lint_mod(lint, """
            from multiprocessing.shared_memory import SharedMemory

            def scratch():
                shm = SharedMemory(create=True, size=64)
                try:
                    shm.buf[0] = 1
                finally:
                    shm.close()
            """)
        assert findings == []

    def test_self_storage_with_teardown_is_managed(self, lint):
        findings = _lint_mod(lint, """
            from repro.fl.codec import DeltaEncoderState

            class Holder:
                def __init__(self):
                    self._state = DeltaEncoderState()

                def close(self):
                    self._state = None
            """)
        assert findings == []

    def test_ownership_container_with_teardown_is_managed(self, lint):
        findings = _lint_mod(lint, """
            from multiprocessing.shared_memory import SharedMemory

            class Arena:
                def __init__(self):
                    self._published = []

                def publish(self):
                    self._published.append(
                        SharedMemory(create=True, size=64))

                def close(self):
                    for shm in self._published:
                        shm.close()
            """)
        assert findings == []

    def test_returned_resource_is_managed(self, lint):
        findings = _lint_mod(lint, """
            import socket

            def connect(addr):
                sock = socket.create_connection(addr)
                return sock
            """)
        assert findings == []

    def test_resource_handed_to_a_wrapper_is_managed(self, lint):
        findings = _lint_mod(lint, """
            import socket

            def connect(addr, wrap):
                return wrap(socket.create_connection(addr))
            """)
        assert findings == []

    def test_allow_comment_silences(self, lint):
        findings = _lint_mod(lint, """
            import socket

            def probe(addr):
                sock = socket.create_connection(addr)  # lint: allow[resource]
                sock.sendall(b"ping")
            """)
        assert findings == []


class TestRealModules:
    @pytest.mark.parametrize("module_name", ["arena", "transport", "codec"])
    def test_shipping_modules_are_clean(self, module_name):
        import importlib
        from pathlib import Path

        from repro.analysis.engine import parse_modules, run_checkers

        module = importlib.import_module(f"repro.fl.{module_name}")
        modules, errors = parse_modules([Path(module.__file__)])
        assert errors == []
        assert run_checkers(modules, [ResourceChecker()]) == []
