"""Tests for the Proposition 1/2 convergence analysis utilities."""

import numpy as np
import pytest

from repro.core import (analyze_soft_training, descent_upper_bound,
                        expected_active_bound,
                        optimal_selection_probabilities,
                        select_v_for_epsilon, sparsified_gradient_variance)


class TestDescentBound:
    def test_bound_below_loss_for_small_lr(self):
        bound = descent_upper_bound(loss_value=1.0, grad_norm_sq=4.0,
                                    grad_second_moment=5.0,
                                    learning_rate=0.01, smoothness=1.0)
        assert bound < 1.0

    def test_large_lr_can_increase_bound(self):
        small = descent_upper_bound(1.0, 4.0, 100.0, 0.01, 10.0)
        large = descent_upper_bound(1.0, 4.0, 100.0, 1.0, 10.0)
        assert large > small

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            descent_upper_bound(1.0, 1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            descent_upper_bound(1.0, 1.0, 1.0, 0.1, 0.0)


class TestSparsifiedVariance:
    def test_all_ones_probabilities_give_full_variance(self):
        gradients = np.array([1.0, 2.0, 3.0])
        variance = sparsified_gradient_variance(gradients,
                                                np.ones_like(gradients))
        np.testing.assert_allclose(variance, 14.0)

    def test_lower_probability_raises_variance(self):
        gradients = np.array([1.0, 2.0, 3.0])
        half = sparsified_gradient_variance(gradients,
                                            np.full(3, 0.5))
        np.testing.assert_allclose(half, 28.0)

    def test_rejects_zero_probability(self):
        with pytest.raises(ValueError):
            sparsified_gradient_variance(np.ones(2), np.array([1.0, 0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            sparsified_gradient_variance(np.ones(3), np.ones(2))


class TestOptimalProbabilities:
    def test_epsilon_zero_keeps_everything(self):
        probabilities = optimal_selection_probabilities(
            np.array([1.0, 0.5, 0.1]), epsilon=0.0)
        np.testing.assert_allclose(probabilities, 1.0)

    def test_variance_constraint_respected(self):
        rng = np.random.default_rng(0)
        gradients = rng.normal(size=50)
        for epsilon in (0.2, 1.0, 3.0):
            probabilities = optimal_selection_probabilities(gradients, epsilon)
            variance = sparsified_gradient_variance(gradients, probabilities)
            budget = (1.0 + epsilon) * np.sum(gradients ** 2)
            assert variance <= budget * 1.01

    def test_larger_epsilon_keeps_fewer_neurons(self):
        rng = np.random.default_rng(1)
        gradients = rng.normal(size=100)
        tight = optimal_selection_probabilities(gradients, 0.2).sum()
        loose = optimal_selection_probabilities(gradients, 2.0).sum()
        assert loose < tight

    def test_larger_gradients_more_likely_kept(self):
        gradients = np.array([10.0, 1.0, 0.1, 0.01])
        probabilities = optimal_selection_probabilities(gradients, 1.0)
        assert np.all(np.diff(probabilities) <= 1e-9)

    def test_zero_gradient_vector_keeps_all(self):
        probabilities = optimal_selection_probabilities(np.zeros(5), 1.0)
        np.testing.assert_allclose(probabilities, 1.0)

    def test_negative_epsilon_raises(self):
        with pytest.raises(ValueError):
            optimal_selection_probabilities(np.ones(3), -0.1)


class TestSelectV:
    def test_v_counts_probability_one_entries(self):
        gradients = np.array([5.0, 4.0, 0.01, 0.005])
        v, probabilities = select_v_for_epsilon(gradients, 0.5)
        assert v == int(np.sum(probabilities >= 1.0 - 1e-12))
        assert 0 <= v <= gradients.size

    def test_tiny_epsilon_keeps_almost_everything(self):
        gradients = np.array([5.0, 4.0, 3.0, 2.0])
        v, probabilities = select_v_for_epsilon(gradients, 1e-6)
        assert v >= 3
        assert probabilities.sum() > 3.9

    def test_v_shrinks_with_epsilon(self):
        rng = np.random.default_rng(3)
        gradients = np.abs(rng.normal(size=60)) ** 2
        v_tight, _ = select_v_for_epsilon(gradients, 0.1)
        v_loose, _ = select_v_for_epsilon(gradients, 2.0)
        assert v_loose <= v_tight


class TestExpectedActiveBound:
    def test_formula(self):
        assert expected_active_bound(10, 0.5) == 15.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_active_bound(-1, 0.5)
        with pytest.raises(ValueError):
            expected_active_bound(3, -0.5)


class TestAnalyzeSoftTraining:
    def test_summary_consistency(self):
        rng = np.random.default_rng(0)
        gradients = np.abs(rng.normal(size=40))
        analysis = analyze_soft_training(gradients, epsilon=0.5)
        assert analysis.num_neurons == 40
        assert analysis.bound_satisfied
        assert analysis.variance_budget >= analysis.full_variance
        assert 0 <= analysis.v <= 40
        assert analysis.expected_active <= 40

    def test_concentrated_gradient_sparsifies_aggressively(self):
        # One dominant neuron: the optimal policy keeps very few neurons
        # active in expectation while respecting the variance budget.
        gradients = np.array([100.0] + [1e-4] * 50)
        analysis = analyze_soft_training(gradients, epsilon=1.0)
        assert analysis.bound_satisfied
        assert analysis.expected_active < 5.0

    def test_rho_implied_nonnegative(self):
        gradients = np.abs(np.random.default_rng(2).normal(size=30))
        analysis = analyze_soft_training(gradients, epsilon=1.0)
        assert analysis.rho_implied >= 0.0
