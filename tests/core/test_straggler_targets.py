"""Tests for straggler identification and optimization-target determination."""

import numpy as np
import pytest

from repro.core import OptimizationTargetPolicy, StragglerIdentifier
from repro.hardware import TrainingCostModel

from ..conftest import FAST_DEVICE, SLOW_DEVICE, make_device, make_tiny_model


@pytest.fixture
def identifier():
    return StragglerIdentifier(make_tiny_model(), (1, 8, 8),
                               samples_per_cycle=2000, batch_size=20)


@pytest.fixture
def fleet():
    return [FAST_DEVICE.scaled(name="capable-0"),
            FAST_DEVICE.scaled(name="capable-1"),
            SLOW_DEVICE.scaled(name="straggler-0"),
            make_device("straggler-1", compute=8.0, memory_bw=3.0)]


class TestResourceIdentification:
    def test_flags_slow_devices(self, identifier, fleet):
        report = identifier.identify_by_resources(fleet)
        assert report.method == "resource"
        assert set(report.straggler_indices) == {2, 3}

    def test_ranking_slowest_first(self, identifier, fleet):
        report = identifier.identify_by_resources(fleet)
        seconds = report.cycle_seconds
        assert seconds[report.ranking[0]] == max(seconds.values())
        assert seconds[report.ranking[-1]] == min(seconds.values())

    def test_top_k_selects_exactly_k(self, identifier, fleet):
        report = identifier.identify_by_resources(fleet, top_k=1)
        assert len(report.straggler_indices) == 1
        # The single flagged device is the slowest one.
        assert report.straggler_indices[0] == report.ranking[0]

    def test_top_k_out_of_range(self, identifier, fleet):
        with pytest.raises(ValueError):
            identifier.identify_by_resources(fleet, top_k=10)

    def test_homogeneous_fleet_has_no_stragglers(self, identifier):
        fleet = [FAST_DEVICE.scaled(name=f"node-{i}") for i in range(4)]
        report = identifier.identify_by_resources(fleet)
        assert report.straggler_indices == []

    def test_report_helpers(self, identifier, fleet):
        report = identifier.identify_by_resources(fleet)
        assert report.is_straggler(2)
        assert not report.is_straggler(0)
        assert set(report.capable_indices()) == {0, 1}
        assert report.slowdown_factor(2) > 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            StragglerIdentifier(make_tiny_model(), (1, 8, 8),
                                samples_per_cycle=100,
                                slowdown_threshold=1.0)


class TestTimeIdentification:
    def test_matches_resource_identification(self, identifier, fleet):
        """With small noise, both paths should agree on this fleet."""
        resource = identifier.identify_by_resources(fleet)
        timed = identifier.identify_by_time(fleet, noise_std=0.01,
                                            rng=np.random.default_rng(0))
        assert set(timed.straggler_indices) == set(
            resource.straggler_indices)
        assert timed.method == "time"

    def test_measurement_scaled_to_full_cycle(self, identifier, fleet):
        resource = identifier.identify_by_resources(fleet)
        timed = identifier.identify_by_time(fleet, noise_std=0.0)
        for index in resource.cycle_seconds:
            np.testing.assert_allclose(timed.cycle_seconds[index],
                                       resource.cycle_seconds[index],
                                       rtol=1e-6)


class TestTargetPolicy:
    def test_resource_adapted_volumes_in_range(self, fleet):
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=2000)
        report = identifier.identify_by_resources(fleet)
        policy = OptimizationTargetPolicy(model, (1, 8, 8))
        assignment = policy.assign_resource_adapted(
            report, fleet, samples_per_cycle={i: 2000 for i in range(4)})
        assert set(assignment.volumes) == set(report.straggler_indices)
        for volume in assignment.volumes.values():
            assert 0.0 < volume < 1.0

    def test_resource_adapted_meets_pace(self, fleet):
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=2000)
        report = identifier.identify_by_resources(fleet)
        policy = OptimizationTargetPolicy(model, (1, 8, 8), min_volume=0.05)
        assignment = policy.assign_resource_adapted(
            report, fleet, samples_per_cycle={i: 2000 for i in range(4)})
        for index, volume in assignment.volumes.items():
            cost_model = TrainingCostModel(model, (1, 8, 8),
                                           samples_per_cycle=2000)
            fractions = {layer.name: volume for layer in model.neuron_layers()}
            achieved = cost_model.estimate(fleet[index], fractions).total_seconds
            # Shrunk cycle must be within the slack of the reference pace
            # unless the volume already hit the floor.
            if volume > 0.05 + 1e-9:
                assert achieved <= assignment.target_seconds * 1.05

    def test_capable_devices_get_full_volume(self, fleet):
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=2000)
        report = identifier.identify_by_resources(fleet)
        policy = OptimizationTargetPolicy(model, (1, 8, 8))
        assignment = policy.assign_resource_adapted(
            report, fleet, samples_per_cycle={i: 2000 for i in range(4)})
        assert assignment.volume_for(0) == 1.0

    def test_predefined_levels_slowest_gets_smallest(self, fleet):
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=2000)
        report = identifier.identify_by_resources(fleet)
        policy = OptimizationTargetPolicy(model, (1, 8, 8))
        assignment = policy.assign_predefined_levels(report)
        slowest = report.ranking[0]
        other = [i for i in report.straggler_indices if i != slowest][0]
        assert assignment.volumes[slowest] <= assignment.volumes[other]

    def test_as_layer_fractions(self, fleet):
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=2000)
        report = identifier.identify_by_resources(fleet)
        policy = OptimizationTargetPolicy(model, (1, 8, 8))
        assignment = policy.assign_predefined_levels(report)
        straggler = report.straggler_indices[0]
        fractions = assignment.as_layer_fractions(model, straggler)
        assert set(fractions) == {"fc1", "fc2", "output"}
        assert all(value == assignment.volumes[straggler]
                   for value in fractions.values())

    def test_invalid_policy_arguments(self):
        model = make_tiny_model()
        with pytest.raises(ValueError):
            OptimizationTargetPolicy(model, (1, 8, 8), min_volume=0.0)
        with pytest.raises(ValueError):
            OptimizationTargetPolicy(model, (1, 8, 8), volume_levels=())
        with pytest.raises(ValueError):
            OptimizationTargetPolicy(model, (1, 8, 8), volume_levels=(1.5,))
