"""Tests for the Helios strategy, heterogeneous aggregation and scalability."""

import numpy as np
import pytest

from repro.core import (DynamicJoinManager, HeliosConfig, HeliosStrategy,
                        heterogeneity_ratios, heterogeneity_weights)
from repro.fl import ClientConfig, ClientUpdate, FLClient
from repro.nn import ModelMask

from ..conftest import (FAST_DEVICE, SLOW_DEVICE, make_tiny_dataset,
                        make_tiny_model, make_tiny_simulation)


def make_update(client_id, num_samples=10, fraction=None):
    model = make_tiny_model()
    mask = None
    if fraction is not None:
        mask = ModelMask.random(model, {"fc1": fraction, "fc2": fraction,
                                        "output": fraction},
                                np.random.default_rng(client_id))
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=model.get_weights(),
                        num_samples=num_samples, train_loss=0.0, mask=mask)


class TestHeterogeneityWeights:
    def test_ratios_default_to_one(self):
        ratios = heterogeneity_ratios([make_update(0), make_update(1)])
        assert ratios == [1.0, 1.0]

    def test_partial_update_has_smaller_ratio(self):
        ratios = heterogeneity_ratios([make_update(0),
                                       make_update(1, fraction=0.5)])
        assert ratios[1] < ratios[0]

    def test_weights_sum_to_one(self):
        weights = heterogeneity_weights([make_update(0),
                                         make_update(1, fraction=0.25)])
        np.testing.assert_allclose(weights.sum(), 1.0)

    def test_complete_model_weighs_more(self):
        weights = heterogeneity_weights(
            [make_update(0), make_update(1, fraction=0.25)],
            combine_with_sample_counts=False)
        assert weights[0] > weights[1]

    def test_alpha_formula_without_sample_counts(self):
        weights = heterogeneity_weights(
            [make_update(0), make_update(1, fraction=0.5)],
            combine_with_sample_counts=False)
        # alpha_n = r_n / sum(r) with r = [1.0, ~0.5].
        ratios = heterogeneity_ratios([make_update(0),
                                       make_update(1, fraction=0.5)])
        np.testing.assert_allclose(weights,
                                   np.array(ratios) / np.sum(ratios))

    def test_sample_counts_combine(self):
        weights = heterogeneity_weights(
            [make_update(0, num_samples=10),
             make_update(1, num_samples=90)],
            combine_with_sample_counts=True)
        assert weights[1] > weights[0]

    def test_ratio_exponent_sharpens(self):
        updates = [make_update(0), make_update(1, fraction=0.25)]
        linear = heterogeneity_weights(updates,
                                       combine_with_sample_counts=False)
        sharp = heterogeneity_weights(updates,
                                      combine_with_sample_counts=False,
                                      ratio_exponent=2.0)
        assert sharp[1] < linear[1]

    def test_empty_updates_raise(self):
        with pytest.raises(ValueError):
            heterogeneity_weights([])


class TestHeliosConfig:
    def test_defaults_valid(self):
        config = HeliosConfig()
        assert config.aggregation == "heterogeneous"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            HeliosConfig(top_share=2.0)
        with pytest.raises(ValueError):
            HeliosConfig(identification="guess")
        with pytest.raises(ValueError):
            HeliosConfig(volume_policy="magic")
        with pytest.raises(ValueError):
            HeliosConfig(aggregation="mean")
        with pytest.raises(ValueError):
            HeliosConfig(min_volume=0.0)


class TestHeliosStrategy:
    def test_setup_identifies_stragglers(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        assert strategy.straggler_indices() == [2]
        assert strategy.is_straggler(2)
        assert not strategy.is_straggler(0)

    def test_straggler_volume_below_one(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        assert 0.0 < strategy.volumes[2] < 1.0

    def test_time_based_identification_path(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(identification="time", seed=0))
        strategy.setup(sim)
        assert strategy.report.method == "time"
        assert strategy.straggler_indices() == [2]

    def test_levels_volume_policy(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(volume_policy="levels",
                                               seed=0))
        strategy.setup(sim)
        assert 0.0 < strategy.volumes[2] <= 1.0

    def test_execute_cycle_before_setup_raises(self):
        sim = make_tiny_simulation()
        with pytest.raises(RuntimeError):
            HeliosStrategy().execute_cycle(1, sim)

    def test_cycle_outcome_fields(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.participating_clients == 3
        assert 0.0 < outcome.straggler_fraction_trained < 1.0
        assert outcome.duration_s > 0

    def test_cycle_faster_than_synchronous(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.duration_s < sim.slowest_full_cycle_seconds()

    def test_contributions_recorded_after_cycle(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        strategy.execute_cycle(1, sim)
        assert 2 in strategy.contributions
        assert set(strategy.contributions[2]) == {"fc1", "fc2", "output"}

    def test_full_run_improves_accuracy(self):
        sim = make_tiny_simulation()
        history = sim.run(HeliosStrategy(HeliosConfig(seed=0)), num_cycles=6)
        assert history.final_accuracy() > 0.4
        assert history.strategy_name == "Helios"

    def test_st_only_name_when_fedavg_aggregation(self):
        strategy = HeliosStrategy(HeliosConfig(aggregation="fedavg"))
        assert strategy.name == "S.T. Only"

    def test_setup_is_idempotent_for_same_simulation(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        volumes = dict(strategy.volumes)
        strategy.setup(sim)
        assert strategy.volumes == volumes

    def test_setup_reruns_for_new_simulation(self):
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(make_tiny_simulation())
        first_report = strategy.report
        strategy.setup(make_tiny_simulation(seed=5))
        assert strategy.report is not first_report


class TestPaceAdaptation:
    def test_volume_shrinks_when_straggler_overshoots(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0, adapt_volume_cycles=3,
                                               min_volume=0.05))
        strategy.setup(sim)
        # Force an over-sized volume so the adaptation must shrink it.
        strategy.volumes[2] = 1.0
        strategy.selectors[2].set_volume(
            strategy._layer_fractions(sim, 2))
        before = strategy.volumes[2]
        strategy.execute_cycle(1, sim)
        assert strategy.volumes[2] < before


class TestDynamicJoin:
    def test_fast_newcomer_not_a_straggler(self):
        manager = DynamicJoinManager(make_tiny_model(), (1, 8, 8))
        decision = manager.evaluate_device(FAST_DEVICE,
                                           samples_per_cycle=2000,
                                           reference_seconds=1000.0)
        assert not decision.is_straggler
        assert decision.volume == 1.0

    def test_slow_newcomer_gets_volume(self):
        manager = DynamicJoinManager(make_tiny_model(), (1, 8, 8))
        reference = 0.0005
        decision = manager.evaluate_device(SLOW_DEVICE,
                                           samples_per_cycle=2000,
                                           reference_seconds=reference)
        assert decision.is_straggler
        assert 0.0 < decision.volume < 1.0
        assert decision.slowdown_factor > 1.0

    def test_measured_time_overrides_estimate(self):
        manager = DynamicJoinManager(make_tiny_model(), (1, 8, 8))
        decision = manager.evaluate_device(FAST_DEVICE,
                                           samples_per_cycle=2000,
                                           reference_seconds=1.0,
                                           measured_cycle_seconds=100.0)
        assert decision.is_straggler

    def test_invalid_arguments(self):
        manager = DynamicJoinManager(make_tiny_model(), (1, 8, 8))
        with pytest.raises(ValueError):
            manager.evaluate_device(FAST_DEVICE, samples_per_cycle=0,
                                    reference_seconds=1.0)
        with pytest.raises(ValueError):
            manager.evaluate_device(FAST_DEVICE, samples_per_cycle=10,
                                    reference_seconds=0.0)

    def test_register_new_client_in_strategy(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy(HeliosConfig(seed=0))
        strategy.setup(sim)
        newcomer = FLClient(client_id=3,
                            dataset=make_tiny_dataset(40, seed=9),
                            device=SLOW_DEVICE.scaled(name="late"),
                            model_factory=make_tiny_model,
                            config=ClientConfig(batch_size=20), seed=9)
        decision = strategy.register_new_client(sim, newcomer)
        assert decision.is_straggler
        assert sim.num_clients() == 4
        assert strategy.is_straggler(3)
        # The enlarged fleet still executes a cycle cleanly.
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.participating_clients == 4

    def test_register_before_setup_raises(self):
        sim = make_tiny_simulation()
        strategy = HeliosStrategy()
        newcomer = FLClient(client_id=3,
                            dataset=make_tiny_dataset(20, seed=9),
                            device=SLOW_DEVICE, model_factory=make_tiny_model)
        with pytest.raises(RuntimeError):
            strategy.register_new_client(sim, newcomer)
