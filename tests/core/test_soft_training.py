"""Tests for the soft-training machinery: contribution, selection, rotation."""

import numpy as np
import pytest

from repro.core import (NeuronRotationTracker, SoftTrainingSelector,
                        contributions_from_gradients, layer_parameter_index,
                        neuron_contributions)
from repro.nn import ModelMask

from ..conftest import make_tiny_model


@pytest.fixture
def model():
    return make_tiny_model()


UNIFORM_HALF = {"fc1": 0.5, "fc2": 0.5, "output": 0.5}


class TestContribution:
    def test_layer_parameter_index_covers_all_layers(self, model):
        index = layer_parameter_index(model)
        assert set(index) == {"fc1", "fc2", "output"}
        assert ("fc1/weight", 0) in index["fc1"]
        assert ("fc1/bias", 0) in index["fc1"]

    def test_zero_change_zero_contribution(self, model):
        weights = model.get_weights()
        contributions = neuron_contributions(model, weights, weights)
        for scores in contributions.values():
            np.testing.assert_allclose(scores, 0.0)

    def test_changed_neuron_has_positive_score(self, model):
        old = model.get_weights()
        new = {name: value.copy() for name, value in old.items()}
        new["fc1/weight"][3] += 1.0
        contributions = neuron_contributions(model, old, new)
        assert contributions["fc1"][3] > 0
        assert contributions["fc1"][0] == 0.0

    def test_score_sums_weight_and_bias_changes(self, model):
        old = model.get_weights()
        new = {name: value.copy() for name, value in old.items()}
        new["fc2/weight"][1] += 0.5          # 16 inputs -> +8 total
        new["fc2/bias"][1] += 0.25
        contributions = neuron_contributions(model, old, new)
        np.testing.assert_allclose(contributions["fc2"][1], 0.5 * 16 + 0.25)

    def test_missing_parameter_raises(self, model):
        old = model.get_weights()
        new = dict(old)
        del new["fc1/bias"]
        with pytest.raises(KeyError):
            neuron_contributions(model, old, new)

    def test_contributions_from_gradients(self, model):
        gradients = {name: np.zeros_like(value)
                     for name, value in model.get_weights().items()}
        gradients["output/weight"][2] = 1.0
        scores = contributions_from_gradients(model, gradients)
        assert scores["output"][2] > 0
        assert scores["output"][0] == 0.0


class TestSelector:
    def test_respects_volume_budget(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF, top_share=0.2,
                                        rng=np.random.default_rng(0))
        mask = selector.select()
        counts = mask.active_counts()
        assert counts["fc1"] == 8
        assert counts["fc2"] == 4
        assert counts["output"] == 2

    def test_includes_top_contribution_neurons(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF, top_share=0.5,
                                        rng=np.random.default_rng(0))
        contributions = {"fc1": np.zeros(16), "fc2": np.zeros(8),
                         "output": np.zeros(4)}
        contributions["fc1"][5] = 100.0
        contributions["fc1"][9] = 50.0
        mask = selector.select(contributions)
        assert mask["fc1"][5]
        assert mask["fc1"][9]

    def test_selection_rotates_over_cycles(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF, top_share=0.0,
                                        rng=np.random.default_rng(0))
        coverage = ModelMask.empty(model)
        for _ in range(20):
            coverage = coverage.union(selector.select())
        # Purely random rotation must eventually touch every neuron.
        assert coverage.active_fraction() == 1.0

    def test_forced_neurons_always_selected(self, model):
        selector = SoftTrainingSelector(model, {"fc1": 0.2, "fc2": 0.2,
                                                "output": 0.5},
                                        rng=np.random.default_rng(0))
        mask = selector.select(forced={"fc1": [0, 1, 2]})
        assert mask["fc1"][0] and mask["fc1"][1] and mask["fc1"][2]

    def test_forced_out_of_range_raises(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF,
                                        rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            selector.select(forced={"fc1": [99]})

    def test_set_volume_updates_counts(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF,
                                        rng=np.random.default_rng(0))
        selector.set_volume({"fc1": 0.25})
        assert selector.selection_counts()["fc1"] == 4

    def test_set_volume_validation(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF,
                                        rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            selector.set_volume({"nope": 0.5})
        with pytest.raises(ValueError):
            selector.set_volume({"fc1": 0.0})

    def test_invalid_construction(self, model):
        with pytest.raises(ValueError):
            SoftTrainingSelector(model, UNIFORM_HALF, top_share=1.5)
        with pytest.raises(ValueError):
            SoftTrainingSelector(model, {"fc1": 0.0})

    def test_wrong_contribution_shape_raises(self, model):
        selector = SoftTrainingSelector(model, UNIFORM_HALF,
                                        rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            selector.select({"fc1": np.zeros(3)})

    def test_full_volume_selects_everything(self, model):
        selector = SoftTrainingSelector(model, {"fc1": 1.0, "fc2": 1.0,
                                                "output": 1.0},
                                        rng=np.random.default_rng(0))
        assert selector.select().active_fraction() == 1.0


class TestRotationTracker:
    def test_threshold_formula(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        # 28 neurons total, 14 selected per cycle -> 1 + 28/14 = 3.
        np.testing.assert_allclose(tracker.threshold, 3.0)

    def test_skip_counts_accumulate(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        tracker.record_cycle(mask)
        tracker.record_cycle(mask)
        assert tracker.max_skip_count() == 2

    def test_selected_neurons_reset_counter(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        skip_all = ModelMask({"fc1": np.zeros(16, dtype=bool),
                              "fc2": np.ones(8, dtype=bool),
                              "output": np.ones(4, dtype=bool)})
        select_all = ModelMask.full(model)
        tracker.record_cycle(skip_all)
        tracker.record_cycle(select_all)
        assert tracker.max_skip_count() == 0

    def test_overdue_neurons_reported(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        skip_fc1 = ModelMask({"fc1": np.zeros(16, dtype=bool),
                              "fc2": np.ones(8, dtype=bool),
                              "output": np.ones(4, dtype=bool)})
        for _ in range(3):
            tracker.record_cycle(skip_fc1)
        overdue = tracker.overdue_neurons()
        assert set(overdue) == {"fc1"}
        assert len(overdue["fc1"]) == 16

    def test_no_overdue_before_threshold(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        skip_fc1 = ModelMask({"fc1": np.zeros(16, dtype=bool),
                              "fc2": np.ones(8, dtype=bool),
                              "output": np.ones(4, dtype=bool)})
        tracker.record_cycle(skip_fc1)
        assert tracker.overdue_neurons() == {}

    def test_update_volume_changes_threshold(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        before = tracker.threshold
        tracker.update_volume({"fc1": 0.25, "fc2": 0.25, "output": 0.25})
        assert tracker.threshold > before

    def test_reset_clears_counts(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        skip_all = ModelMask({"fc1": np.zeros(16, dtype=bool),
                              "fc2": np.zeros(8, dtype=bool),
                              "output": np.zeros(4, dtype=bool)})
        tracker.record_cycle(skip_all)
        tracker.reset()
        assert tracker.max_skip_count() == 0

    def test_missing_layer_in_mask_raises(self, model):
        tracker = NeuronRotationTracker(model, UNIFORM_HALF)
        with pytest.raises(KeyError):
            tracker.record_cycle(ModelMask({"fc1": np.ones(16, dtype=bool)}))

    def test_selector_with_rejoin_covers_all_neurons(self, model):
        """End-to-end rotation property: with forced rejoin no neuron is
        starved longer than the threshold."""
        volume = {"fc1": 0.3, "fc2": 0.3, "output": 0.5}
        selector = SoftTrainingSelector(model, volume, top_share=0.5,
                                        rng=np.random.default_rng(0))
        tracker = NeuronRotationTracker(model, volume)
        # Adversarial contributions: always favour the same neurons.
        contributions = {"fc1": np.arange(16, dtype=float),
                         "fc2": np.arange(8, dtype=float),
                         "output": np.arange(4, dtype=float)}
        for _ in range(30):
            mask = selector.select(contributions,
                                   forced=tracker.overdue_neurons())
            tracker.record_cycle(mask)
            assert tracker.max_skip_count() <= int(np.ceil(
                tracker.threshold)) + 1
