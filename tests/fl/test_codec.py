"""Unit tests of the wire codec (:mod:`repro.fl.codec`).

The contract: any ``(kind, payload)`` message round-trips bit-exactly
through a codec frame — arrays in any dtype/order, compressed or not,
delta-encoded against a synchronized base or shipped full — and every
way the two delta states can fall out of step is detected, never
silently mis-decoded.
"""

import pickle

import numpy as np
import pytest

from repro.fl import codec
from repro.fl.codec import (CODEC_MAGIC, CodecError, DeltaBaseMismatchError,
                            DeltaDecoderState, DeltaEncoderState,
                            decode_message, encode_message, is_codec_frame,
                            negotiate_compression)


class _Batch:
    """Minimal stand-in for a wire batch (only the codec-visible part)."""

    def __init__(self, weights_table):
        self.weights_table = weights_table


def _roundtrip(message, **kwargs):
    frame = encode_message(message, **kwargs)
    return decode_message(frame.tobytes())


def _assert_tables_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.keys() == want.keys()
        for name in want:
            got_arr, want_arr = np.asarray(got[name]), np.asarray(want[name])
            assert got_arr.dtype == want_arr.dtype
            assert got_arr.shape == want_arr.shape
            np.testing.assert_array_equal(got_arr, want_arr)


def _delta_roundtrip(tables, compression="none"):
    """Ship a sequence of weight tables through a committed delta channel;
    returns the decoded tables."""
    encoder, decoder = DeltaEncoderState(), DeltaDecoderState()
    decoded = []
    for table in tables:
        frame = encode_message(("run", _Batch(table)),
                               compression=compression,
                               delta_state=encoder)
        _, payload = decode_message(frame.tobytes(), delta_state=decoder)
        encoder.commit(frame.pending_base, frame.pending_seq)
        decoded.append(payload.weights_table)
    return decoded


class TestFrameFormat:
    def test_simple_message_round_trips(self):
        assert _roundtrip(("ping", {"x": 1, "y": [2, (3, "z")]})) == \
            ("ping", {"x": 1, "y": [2, (3, "z")]})

    def test_frames_are_magic_tagged(self):
        frame = encode_message(("ping", None))
        blob = frame.tobytes()
        assert blob[0] == CODEC_MAGIC
        assert is_codec_frame(blob)
        assert not is_codec_frame(pickle.dumps(("ping", None)))
        assert not is_codec_frame(b"")

    def test_plain_pickle_fallback(self):
        """decode_message accepts legacy plain-pickled messages."""
        blob = pickle.dumps(("hello", {"protocol": 2}))
        assert decode_message(blob) == ("hello", {"protocol": 2})

    def test_plain_pickle_garbage_raises(self):
        with pytest.raises(CodecError):
            decode_message(b"not a pickle at all")

    def test_non_tuple_plain_pickle_raises(self):
        with pytest.raises(CodecError):
            decode_message(pickle.dumps({"kind": "run"}))

    def test_truncated_codec_frame_raises(self):
        blob = encode_message(("ping", None)).tobytes()
        with pytest.raises(CodecError):
            decode_message(blob[:len(blob) - 3])

    def test_trailing_garbage_raises(self):
        blob = encode_message(("ping", None)).tobytes()
        with pytest.raises(CodecError):
            decode_message(blob + b"xx")

    def test_unknown_version_raises(self):
        blob = bytearray(encode_message(("ping", None)).tobytes())
        blob[1] = 99
        with pytest.raises(CodecError, match="version"):
            decode_message(bytes(blob))

    def test_unknown_compression_rejected_at_encode(self):
        with pytest.raises(ValueError, match="compression"):
            encode_message(("ping", None), compression="lzma")

    def test_ndarrays_round_trip_out_of_band(self):
        arrays = {"w": np.arange(64, dtype=np.float64).reshape(8, 8),
                  "b": np.ones(3, dtype=np.float32)}
        frame = encode_message(("reply", arrays))
        # The array payload travels as raw segments, not inside the
        # skeleton pickle.
        assert frame.array_bytes >= 64 * 8 + 3 * 4
        kind, decoded = decode_message(frame.tobytes())
        assert kind == "reply"
        _assert_tables_equal([decoded], [arrays])

    def test_decoded_arrays_are_views_over_writable_buffers(self):
        arrays = {"w": np.arange(100.0)}
        blob = bytearray(encode_message(("reply", arrays)).tobytes())
        _, decoded = decode_message(memoryview(blob))
        decoded["w"][0] = 42.0  # writable view, no copy
        assert decoded["w"].base is not None

    def test_total_bytes_matches_wire_size(self):
        frame = encode_message(("reply", {"w": np.arange(50.0)}))
        assert frame.total_bytes == len(frame.tobytes())
        assert frame.total_bytes == sum(len(b) for b in frame.buffers())

    def test_describe_breaks_payload_down(self):
        frame = encode_message(("run", {"w": np.arange(1000.0)}))
        text = frame.describe()
        assert "skeleton" in text and "ndarray" in text
        assert str(frame.total_bytes) in text


class TestCompression:
    def test_zlib_round_trips_and_shrinks(self):
        arrays = {"w": np.zeros((100, 100))}  # maximally compressible
        raw = encode_message(("reply", arrays))
        packed = encode_message(("reply", arrays), compression="zlib")
        assert packed.total_bytes < raw.total_bytes / 10
        _, decoded = decode_message(packed.tobytes())
        _assert_tables_equal([decoded], [arrays])

    def test_incompressible_segments_stay_raw(self):
        """A segment zlib cannot shrink is stored raw — the flag can
        never inflate a frame beyond the uncompressed layout."""
        noise = np.frombuffer(np.random.default_rng(0).bytes(4096),
                              dtype=np.uint8).copy()
        raw = encode_message(("reply", noise))
        packed = encode_message(("reply", noise), compression="zlib")
        assert packed.total_bytes <= raw.total_bytes
        _, decoded = decode_message(packed.tobytes())
        np.testing.assert_array_equal(decoded, noise)

    def test_small_messages_skip_compression(self):
        raw = encode_message(("ping", None))
        packed = encode_message(("ping", None), compression="zlib")
        assert packed.total_bytes == raw.total_bytes

    def test_negotiation_downgrades_unknown_algorithms(self):
        assert negotiate_compression("zlib") == "zlib"
        assert negotiate_compression("none") == "none"
        assert negotiate_compression("snappy") == "none"
        assert negotiate_compression(None) == "none"


class TestDeltaShipping:
    def test_first_contact_ships_full(self):
        encoder = DeltaEncoderState()
        table = [{"w": np.arange(100.0)}]
        frame = encode_message(("run", _Batch(table)), delta_state=encoder)
        assert frame.array_bytes >= 800
        assert frame.pending_seq == 1
        # Encoding never mutates the state; commit adopts the base.
        assert encoder.base is None
        encoder.commit(frame.pending_base, frame.pending_seq)
        assert encoder.base is not None and encoder.seq == 1

    def test_identical_resend_ships_skip_markers_only(self):
        table = [{"w": np.random.default_rng(0).normal(size=(50, 50)),
                  "b": np.zeros(10)}]
        clone = [{k: v.copy() for k, v in table[0].items()}]
        decoded = _delta_roundtrip([table, clone])
        _assert_tables_equal(decoded[1], clone)
        # Second frame must be tiny: no array bytes at all.
        encoder, _ = DeltaEncoderState(), None
        first = encode_message(("run", _Batch(table)), delta_state=encoder)
        encoder.commit(first.pending_base, first.pending_seq)
        second = encode_message(("run", _Batch(clone)), delta_state=encoder)
        assert second.array_bytes == 0
        assert second.total_bytes < first.total_bytes / 5

    def test_changed_parameters_xor_under_compression(self):
        rng = np.random.default_rng(1)
        w0 = {"w": rng.normal(size=(40, 40))}
        w1 = {"w": w0["w"] + 1e-6 * rng.normal(size=(40, 40))}
        decoded = _delta_roundtrip([[w0], [w1]], compression="zlib")
        _assert_tables_equal(decoded[1], [w1])

    def test_multi_entry_tables_delta_against_entry_zero(self):
        rng = np.random.default_rng(2)
        shared = {"w": rng.normal(size=(10, 10))}
        stale = {"w": rng.normal(size=(10, 10))}
        decoded = _delta_roundtrip([[shared], [shared, stale]])
        _assert_tables_equal(decoded[1], [shared, stale])

    def test_shape_change_falls_back_to_full(self):
        decoded = _delta_roundtrip([[{"w": np.zeros((4, 4))}],
                                    [{"w": np.zeros((8, 8))}]])
        _assert_tables_equal(decoded[1], [{"w": np.zeros((8, 8))}])

    def test_dtype_change_falls_back_to_full(self):
        decoded = _delta_roundtrip(
            [[{"w": np.zeros(8, dtype=np.float64)}],
             [{"w": np.zeros(8, dtype=np.float32)}]])
        assert decoded[1][0]["w"].dtype == np.float32

    def test_new_and_removed_parameters(self):
        decoded = _delta_roundtrip([[{"a": np.ones(4)}],
                                    [{"b": np.ones(6)}]])
        _assert_tables_equal(decoded[1], [{"b": np.ones(6)}])

    def test_nan_payloads_round_trip_bitwise(self):
        w0 = {"w": np.array([np.nan, np.inf, -np.inf, 0.0, -0.0])}
        w1 = {"w": np.array([np.nan, np.inf, -np.inf, 0.0, -0.0])}
        decoded = _delta_roundtrip([[w0], [w1]], compression="zlib")
        got = decoded[1][0]["w"]
        assert got.tobytes() == w1["w"].tobytes()  # bit-exact, NaNs included
        # Identical NaN payloads are recognized as unchanged (bitwise
        # comparison — NaN != NaN must not defeat the skip path).
        encoder = DeltaEncoderState()
        first = encode_message(("run", _Batch([w0])), delta_state=encoder)
        encoder.commit(first.pending_base, first.pending_seq)
        second = encode_message(("run", _Batch([w1])), delta_state=encoder)
        assert second.array_bytes == 0

    def test_fortran_order_round_trips(self):
        w0 = {"w": np.asfortranarray(
            np.random.default_rng(3).normal(size=(6, 7)))}
        w1 = {"w": np.asfortranarray(w0["w"] + 1.0)}
        decoded = _delta_roundtrip([[w0], [w1]], compression="zlib")
        got = decoded[1][0]["w"]
        np.testing.assert_array_equal(got, w1["w"])

    def test_empty_arrays(self):
        table = [{"w": np.empty((0, 5)), "b": np.ones(2)}]
        decoded = _delta_roundtrip([table, table])
        _assert_tables_equal(decoded[1], table)

    def test_delta_disabled_without_state(self):
        """No delta_state → the table travels inline, full, stateless."""
        table = [{"w": np.arange(10.0)}]
        frame = encode_message(("run", _Batch(table)))
        assert frame.pending_seq is None
        _, payload = decode_message(frame.tobytes())
        _assert_tables_equal(payload.weights_table, table)

    def test_force_full_bypasses_the_base(self):
        table = [{"w": np.arange(10.0)}]
        encoder = DeltaEncoderState()
        first = encode_message(("run", _Batch(table)), delta_state=encoder)
        encoder.commit(first.pending_base, first.pending_seq)
        forced = encode_message(("run", _Batch(table)), delta_state=encoder,
                                force_full=True)
        assert forced.array_bytes >= 80  # the raw array travelled again
        fresh = DeltaDecoderState()
        _, payload = decode_message(forced.tobytes(), delta_state=fresh)
        _assert_tables_equal(payload.weights_table, table)

    def test_committed_base_is_decoupled_from_caller_arrays(self):
        """Mutating the snapshot after commit must not corrupt later
        deltas — the committed base is a private copy."""
        snapshot = {"w": np.arange(10.0)}
        encoder, decoder = DeltaEncoderState(), DeltaDecoderState()
        first = encode_message(("run", _Batch([snapshot])),
                               delta_state=encoder)
        decode_message(first.tobytes(), delta_state=decoder)
        encoder.commit(first.pending_base, first.pending_seq)
        snapshot["w"][:] = -1.0  # caller mutates in place
        follow_up = {"w": np.arange(10.0) + 2.0}
        second = encode_message(("run", _Batch([follow_up])),
                                delta_state=encoder, compression="zlib")
        _, payload = decode_message(second.tobytes(), delta_state=decoder)
        _assert_tables_equal(payload.weights_table, [follow_up])


class TestDeltaBaseMismatch:
    def _committed_channel(self):
        encoder, decoder = DeltaEncoderState(), DeltaDecoderState()
        table = [{"w": np.random.default_rng(5).normal(size=(20, 20))}]
        frame = encode_message(("run", _Batch(table)), delta_state=encoder)
        decode_message(frame.tobytes(), delta_state=decoder)
        encoder.commit(frame.pending_base, frame.pending_seq)
        return encoder, decoder, table

    def test_fresh_decoder_rejects_delta(self):
        encoder, _, table = self._committed_channel()
        delta_frame = encode_message(("run", _Batch(table)),
                                     delta_state=encoder)
        with pytest.raises(DeltaBaseMismatchError):
            decode_message(delta_frame.tobytes(),
                           delta_state=DeltaDecoderState())

    def test_out_of_step_seq_rejected(self):
        encoder, decoder, table = self._committed_channel()
        encoder.seq += 3  # simulate a lost acknowledgement history
        delta_frame = encode_message(("run", _Batch(table)),
                                     delta_state=encoder)
        with pytest.raises(DeltaBaseMismatchError):
            decode_message(delta_frame.tobytes(), delta_state=decoder)

    def test_mismatch_leaves_decoder_state_untouched(self):
        encoder, decoder, table = self._committed_channel()
        seq_before, base_before = decoder.seq, decoder.base
        encoder.seq += 1
        delta_frame = encode_message(("run", _Batch(table)),
                                     delta_state=encoder)
        with pytest.raises(DeltaBaseMismatchError):
            decode_message(delta_frame.tobytes(), delta_state=decoder)
        assert decoder.seq == seq_before
        assert decoder.base is base_before

    def test_reset_forces_full_snapshot(self):
        encoder, decoder, table = self._committed_channel()
        encoder.reset()
        frame = encode_message(("run", _Batch(table)), delta_state=encoder)
        assert frame.array_bytes >= 20 * 20 * 8  # full again
        # A full snapshot is accepted by any decoder state, even a
        # fresh one — this is the reconnect fallback.
        _, payload = decode_message(frame.tobytes(),
                                    delta_state=DeltaDecoderState())
        _assert_tables_equal(payload.weights_table, table)


class TestFrameDescribeRegression:
    def test_oversized_run_frame_error_names_kind_and_breakdown(self):
        """Regression (satellite): FrameTooLarge failures must name the
        message kind and the weights-vs-skeleton size breakdown."""
        import socket

        from repro.fl.transport import FrameTooLargeError, MessageChannel

        left, right = socket.socketpair()
        channel = MessageChannel(left, max_frame_bytes=256)
        frame = encode_message(("run", {"w": np.arange(1000.0)}))
        with pytest.raises(FrameTooLargeError) as excinfo:
            channel.send_frame(frame)
        message = str(excinfo.value)
        assert "'run'" in message
        assert "skeleton" in message
        assert "ndarray payload" in message
        assert str(frame.total_bytes) in message
        channel.close()
        right.close()
