"""Multi-tenant shard serving: several parents sharing one fleet.

The acceptance criterion of the concurrent shard server: two parent
sessions running against the *same* shard fleet at the same time each
produce histories bit-identical to a serial run — interleaved batches,
private resident fleets and private delta-decoder bases per session —
and one parent dying abruptly mid-batch neither corrupts nor delays the
sibling's result beyond its own queued request.

The fleets here are in-process :class:`~repro.fl.transport.ShardServer`
instances on daemon threads (same event loop and worker the CLI runs),
so the suite stays tier-1 fast while exercising the real server.
"""

import contextlib
import threading
import time

import numpy as np
import pytest

from repro.baselines import SynchronousFLStrategy
from repro.fl import ShardedSocketBackend
from repro.fl.transport import (ShardServer, TransportError,
                                connect_to_shard, format_address)

from ..conftest import make_tiny_simulation


@contextlib.contextmanager
def _shard_fleet(num_shards=2, **kwargs):
    """In-process shard servers on threads; yields ``host:port`` strings."""
    servers, threads = [], []
    try:
        for _ in range(num_shards):
            server = ShardServer(**kwargs)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            servers.append(server)
            threads.append(thread)
        yield [format_address(server.address) for server in servers]
    finally:
        for server in servers:
            try:
                channel = connect_to_shard(server.address, timeout=5)
                channel.send(("shutdown", None))
                channel.close()
            except (TransportError, OSError):
                pass
        for thread in threads:
            thread.join(timeout=15)
            assert not thread.is_alive()


def _run_collaboration(backend, num_cycles=3):
    """History + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    if backend is not None:
        sim.set_backend(backend)
    try:
        history = sim.run(SynchronousFLStrategy(straggler_top_k=1),
                          num_cycles=num_cycles)
        weights = sim.server.get_global_weights()
    finally:
        sim.close()
    return history, weights


def _assert_identical(actual, reference):
    history, weights = actual
    ref_history, ref_weights = reference
    assert history.accuracies() == ref_history.accuracies()
    assert history.times_s() == ref_history.times_s()
    for name, expected in ref_weights.items():
        np.testing.assert_array_equal(weights[name], expected,
                                      err_msg=name)


def _sleep_return(seconds):
    """Module-level map function (picklable for shard traffic)."""
    time.sleep(seconds)
    return seconds


class TestConcurrentParents:
    def test_two_parents_share_one_fleet_bit_identical(self):
        """Two concurrent parent runs on one 2-shard fleet — different
        cycle counts so their batches genuinely interleave — must both
        match their serial references bit for bit, with the full wire
        codec (zlib + delta shipping) on."""
        reference_a = _run_collaboration(None, num_cycles=3)
        reference_b = _run_collaboration(None, num_cycles=4)
        with _shard_fleet(2) as addresses:
            results, errors = {}, {}

            def parent(name, cycles):
                backend = ShardedSocketBackend(shards=addresses,
                                               wire_compression="zlib",
                                               delta_shipping=True)
                try:
                    results[name] = _run_collaboration(backend,
                                                       num_cycles=cycles)
                except Exception as exc:  # surfaced by the main thread
                    errors[name] = exc

            threads = [threading.Thread(target=parent, args=("a", 3)),
                       threading.Thread(target=parent, args=("b", 4))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
                assert not thread.is_alive(), "a parent run wedged"
            assert not errors, f"a parent run failed: {errors}"
            _assert_identical(results["a"], reference_a)
            _assert_identical(results["b"], reference_b)

    def test_sequential_parents_reuse_one_fleet(self):
        """Back-to-back runs by different parents on one living fleet:
        each starts clean (bye retires the predecessor's session) and
        stays serial-identical."""
        reference = _run_collaboration(None, num_cycles=3)
        with _shard_fleet(2) as addresses:
            for _ in range(2):
                backend = ShardedSocketBackend(shards=addresses,
                                               delta_shipping=True)
                _assert_identical(_run_collaboration(backend, num_cycles=3),
                                  reference)

    def test_parent_killed_mid_batch_leaves_sibling_serial_identical(self):
        """One parent dies abruptly (no bye — the SIGKILL scenario) with
        a request still executing on the shared fleet.  The surviving
        parent's run must complete bit-identical to serial, and the dead
        parent's session must stay resumable."""
        reference = _run_collaboration(None, num_cycles=3)
        with _shard_fleet(2) as addresses:
            doomed = connect_to_shard(addresses[0], timeout=5,
                                      session="doomed-parent")
            # Leave a slow request in flight, then tear the socket down
            # abruptly — the OS-level close a SIGKILLed parent produces.
            doomed.send(("map", (_sleep_return, [(0, 1.5)])))
            time.sleep(0.2)  # let the worker pick it up
            doomed._socket().close()

            backend = ShardedSocketBackend(shards=addresses,
                                           wire_compression="zlib",
                                           delta_shipping=True)
            _assert_identical(_run_collaboration(backend, num_cycles=3),
                              reference)

            again = connect_to_shard(addresses[0], timeout=5,
                                     session="doomed-parent")
            assert again.resumed is True
            again.send(("bye", None))
            again.close()
