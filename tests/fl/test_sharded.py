"""End-to-end and failure-injection tests of the sharded socket backend.

Four guarantees under test:

* a 2-shard localhost fleet produces *bit-identical* histories to the
  serial backend under a fixed seed (the trust anchor of the whole
  multi-host story);
* a shard dying mid-cycle aborts the batch with a :class:`ShardError`
  naming the shard, and ``close()`` leaves no orphan processes or
  sockets — double-close, close-after-shard-death, close racing close
  and close racing an in-flight batch included;
* under ``on_failure="rebalance"`` a SIGKILLed shard does *not* end the
  run: the topology is repaired (respawn in place, or rebalance onto
  surviving external shards) and the finished history is bit-identical
  to serial — the acceptance criterion of the failover substrate;
* clean close/reconnect semantics: a closed backend lazily respawns its
  shards and continues every client's RNG stream exactly where it
  stopped.
"""

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.baselines import SynchronousFLStrategy
from repro.fl import ShardedSocketBackend, ShardError, TrainingJob
from repro.fl.executor import _read_shard_announce, _reap_shard_process

from ..conftest import FAST_DEVICE, make_tiny_simulation


def _run_collaboration(backend, num_cycles=3):
    """History + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    if backend is not None:
        sim.set_backend(backend)
    try:
        history = sim.run(SynchronousFLStrategy(straggler_top_k=1),
                          num_cycles=num_cycles)
        weights = sim.server.get_global_weights()
    finally:
        sim.close()
    return history, weights


def _assert_no_orphans(backend):
    """The backend holds no live channels and no live shard processes."""
    assert not backend._channels
    assert not backend._live_addresses
    assert not backend._procs


def _print_much(value):
    """Floods the shard's stdout far past the OS pipe buffer."""
    print("n" * 100_000)
    return value


def _sleep_return(seconds):
    """Module-level map function that sleeps (close-race probe)."""
    time.sleep(seconds)
    return seconds


def _kill_shard(backend, slot):
    """SIGKILL one auto-spawned shard process and wait for it to die."""
    proc = backend._procs[slot]
    proc.kill()
    proc.wait(timeout=10)
    return proc


def _spawn_external_shard():
    """Start a ``repro shard-worker`` subprocess; returns (proc, addr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-worker", "--port", "0"],
        stdout=subprocess.PIPE, env=env, text=True)
    try:
        host, port = _read_shard_announce(proc, timeout=30)
    except Exception:
        _reap_shard_process(proc, timeout=0.0)
        raise
    return proc, f"{host}:{port}"


class _ShardKillingSync(SynchronousFLStrategy):
    """Synchronous FL that SIGKILLs one shard before a chosen cycle.

    The kill happens *between* batches (before the cycle's trainings are
    dispatched) — the scenario of the acceptance criterion: a shard host
    dies somewhere in a multi-hour run and the next cycle notices.
    """

    def __init__(self, backend, kill_before_cycle, slot=0, **kwargs):
        super().__init__(**kwargs)
        self._backend = backend
        self._kill_before_cycle = kill_before_cycle
        self._slot = slot
        self.killed = False

    def execute_cycle(self, cycle, sim):
        if cycle == self._kill_before_cycle and not self.killed:
            self.killed = True
            _kill_shard(self._backend, self._slot)
        return super().execute_cycle(cycle, sim)


def test_announce_read_survives_leading_stdout_junk():
    """Regression: output flushed in the same pipe chunk as the announce
    line (import-time warning, sitecustomize print) must not make the
    spawn time out."""
    import subprocess
    import sys

    from repro.fl.executor import _read_shard_announce
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "print('junk line'); "
         "print('SHARD_LISTENING 127.0.0.1 1234', flush=True); "
         "import time; time.sleep(30)"],
        stdout=subprocess.PIPE, text=True)
    try:
        assert _read_shard_announce(proc, timeout=10) == ("127.0.0.1", 1234)
    finally:
        proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()


def test_noisy_shard_stdout_does_not_deadlock():
    """Regression: an auto-spawned shard writing to stdout mid-batch must
    not fill the announce pipe and hang the fleet (the parent drains it)."""
    backend = ShardedSocketBackend(shards=1)
    try:
        assert backend.map_ordered(_print_much, [0, 1, 2]) == [0, 1, 2]
    finally:
        backend.close()
    _assert_no_orphans(backend)


class TestTwoShardFleet:
    def test_history_bit_identical_to_serial(self):
        """Acceptance: a 2-shard localhost fleet end-to-end equals serial."""
        reference_history, reference_weights = _run_collaboration(None)
        backend = ShardedSocketBackend(shards=2)
        history, weights = _run_collaboration(backend)
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        assert ([record.mean_train_loss for record in history.records]
                == [record.mean_train_loss
                    for record in reference_history.records])
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])
        _assert_no_orphans(backend)

    def test_fleet_spans_both_shards(self):
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            assert set(backend._placement.values()) == {0, 1}
            assert len(backend._procs) == 2
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
        finally:
            sim.close()
        _assert_no_orphans(backend)

    def test_dispatch_bytes_measured_and_match_persistent(self):
        """Warm sharded dispatch is the persistent wire format on sockets:
        byte-for-byte the same payload size."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights)
                for index in sim.client_indices()]
        try:
            cold = backend.dispatch_payload_bytes(sim.clients, jobs)
            sim.run_jobs(jobs)
            assert backend.last_dispatch_bytes == cold
            warm = backend.dispatch_payload_bytes(sim.clients, jobs)
            assert warm < cold  # specs (datasets!) no longer travel
        finally:
            sim.close()

        persistent_sim = make_tiny_simulation()
        persistent = persistent_sim.set_backend("persistent", max_workers=2)
        try:
            persistent_sim.run_jobs(jobs)
            persistent_warm = persistent.dispatch_payload_bytes(
                persistent_sim.clients, jobs)
        finally:
            persistent_sim.close()
        assert warm == persistent_warm


class TestFailureInjection:
    def test_shard_killed_mid_cycle_propagates_identity(self):
        """Killing a shard worker aborts the batch with the shard's
        identity in the error, and tears the fleet down orphan-free."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())  # shards warm
            victim_slot = 0
            victim = backend._procs[victim_slot]
            survivor = backend._procs[1]
            address = backend.shard_address(victim_slot)
            victim.kill()
            victim.wait(timeout=10)
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            error = excinfo.value
            assert error.slot == victim_slot
            assert error.address == address
            assert f"{address[0]}:{address[1]}" in str(error)
            # The batch abort closed the backend: both shard processes
            # are gone, no sockets remain.
            _assert_no_orphans(backend)
            assert survivor.poll() is not None
        finally:
            sim.close()  # idempotent on the already-closed backend
        _assert_no_orphans(backend)

    def test_close_after_shard_death_is_safe(self):
        """Regression: close() on a backend whose shard was killed
        externally must not raise (and stays idempotent)."""
        backend = ShardedSocketBackend(shards=2)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            for proc in backend._procs.values():
                proc.kill()
                proc.wait(timeout=10)
        finally:
            sim.close()
        sim.close()
        backend.close()
        _assert_no_orphans(backend)

    def test_unreachable_shard_aborts_and_closes(self):
        """A shard address nobody listens on fails the batch with the
        shard's identity and leaves the backend fully closed."""
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        backend = ShardedSocketBackend(
            shards=[f"127.0.0.1:{free_port}"], connect_timeout=2)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            assert excinfo.value.address == ("127.0.0.1", free_port)
            _assert_no_orphans(backend)
        finally:
            sim.close()

    def test_training_error_does_not_kill_shards(self):
        """A job raising *inside* a shard surfaces the original exception
        (not a ShardError) and leaves the shards serving."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        weights = sim.server.get_global_weights()
        try:
            sim.train_clients(sim.client_indices())
            with pytest.raises(ValueError, match="local_epochs"):
                sim.run_jobs([TrainingJob(index=0, weights=weights,
                                          local_epochs=0)])
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
            # The failed client's replica was dropped; the next batch
            # re-ships its spec and trains fine.
            updates = sim.train_clients(sim.client_indices())
            assert [update.client_id for update in updates] == [0, 1, 2]
        finally:
            sim.close()
        _assert_no_orphans(backend)


class TestCloseReconnect:
    def test_reuse_after_close_continues_rng_streams(self):
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            first_procs = list(backend._procs.values())
            backend.close()
            _assert_no_orphans(backend)
            assert all(proc.poll() is not None for proc in first_procs)
            # Lazy respawn: fresh shard processes, specs re-shipped, RNG
            # streams continued — bit-identical to uninterrupted serial.
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for expected, actual in zip(serial_second, second):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_fleet_mutations_stay_bit_identical(self):
        """add_client + device swap mid-run match a serial run exactly."""
        def run(backend_name):
            from repro.fl import ClientConfig, FLClient
            from ..conftest import make_tiny_dataset, make_tiny_model
            sim = make_tiny_simulation()
            if backend_name != "serial":
                sim.set_backend(backend_name, max_workers=2)
            try:
                sim.train_clients(sim.client_indices())
                sim.add_client(FLClient(
                    client_id=3, dataset=make_tiny_dataset(40, seed=9),
                    device=FAST_DEVICE.scaled(name="joiner"),
                    model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20)))
                sim.set_client_device(
                    1, FAST_DEVICE.scaled(compute=0.5, name="throttled"))
                return sim.train_clients(sim.client_indices())
            finally:
                sim.close()

        serial_updates = run("serial")
        sharded_updates = run("sharded")
        assert [update.client_name for update in sharded_updates] \
            == [update.client_name for update in serial_updates]
        for expected, actual in zip(serial_updates, sharded_updates):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])


def _assert_updates_equal(expected_updates, actual_updates):
    assert len(expected_updates) == len(actual_updates)
    for expected, actual in zip(expected_updates, actual_updates):
        assert expected.client_id == actual.client_id
        assert expected.train_loss == actual.train_loss
        for key in expected.weights:
            np.testing.assert_array_equal(expected.weights[key],
                                          actual.weights[key])


class TestRebalanceFailover:
    """``on_failure="rebalance"``: a dead shard costs time, not the run."""

    def test_sigkill_between_cycles_completes_bit_identical(self):
        """Acceptance: a 3-shard run with one shard SIGKILLed between
        cycles finishes under rebalance with a history bit-identical to
        serial, and the fleet is healed afterwards."""
        reference_history, reference_weights = _run_collaboration(None)
        backend = ShardedSocketBackend(shards=3, on_failure="rebalance")
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        strategy = _ShardKillingSync(backend, kill_before_cycle=2,
                                     straggler_top_k=1)
        try:
            history = sim.run(strategy, num_cycles=3)
            weights = sim.server.get_global_weights()
            assert strategy.killed
            # The dead slot was respawned in place: 3 live shards again.
            assert len(backend._procs) == 3
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
            assert not backend._dead_slots
        finally:
            sim.close()
        _assert_no_orphans(backend)
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        assert ([record.mean_train_loss for record in history.records]
                == [record.mean_train_loss
                    for record in reference_history.records])
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    def test_sigkill_under_abort_still_fails_fast_with_identity(self):
        """The flip side of the acceptance criterion: the default abort
        policy still names the dead shard and tears the fleet down."""
        backend = ShardedSocketBackend(shards=3)  # abort is the default
        assert backend.on_failure == "abort"
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            address = backend.shard_address(0)
            _kill_shard(backend, 0)
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            assert excinfo.value.slot == 0
            assert excinfo.value.address == address
            _assert_no_orphans(backend)
        finally:
            sim.close()

    def test_kill_with_inflight_connection_retries_whole_batch(self):
        """The killed shard's channel is still open when the batch is
        dispatched — the failure surfaces mid-collect and the whole
        batch is retried bit-identically on the repaired fleet."""
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2,
                                  on_shard_failure="rebalance")
        try:
            sim.train_clients(sim.client_indices())
            _kill_shard(backend, 0)
            second = sim.train_clients(sim.client_indices())
            assert len(backend._procs) == 2
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
        finally:
            sim.close()
        _assert_no_orphans(backend)
        _assert_updates_equal(serial_second, second)

    def test_external_shard_death_rebalances_onto_survivor(self):
        """With explicit addresses there is nothing to respawn: the dead
        shard's slot is declared dead after its reconnect attempt fails
        and its clients move to the surviving shard."""
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        victim_proc, victim_addr = _spawn_external_shard()
        survivor_proc, survivor_addr = _spawn_external_shard()
        backend = ShardedSocketBackend(
            shards=[victim_addr, survivor_addr],
            on_failure="rebalance", connect_timeout=10)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            victim_proc.kill()
            victim_proc.wait(timeout=10)
            second = sim.train_clients(sim.client_indices())
            assert backend._dead_slots == {0}
            # Every client now lives on the survivor.
            assert set(backend._placement.values()) == {1}
        finally:
            sim.close()
            for proc in (victim_proc, survivor_proc):
                _reap_shard_process(proc, timeout=0.0)
        _assert_updates_equal(serial_second, second)

    def test_all_shards_dead_aborts_with_shard_error(self):
        """Rebalance cannot conjure capacity: when every shard is gone
        and respawn is impossible (external topology), the batch fails
        with a ShardError and the backend is closed."""
        shard_proc, shard_addr = _spawn_external_shard()
        backend = ShardedSocketBackend(
            shards=[shard_addr], on_failure="rebalance", connect_timeout=5)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            shard_proc.kill()
            shard_proc.wait(timeout=10)
            with pytest.raises(ShardError):
                sim.train_clients(sim.client_indices())
            _assert_no_orphans(backend)
        finally:
            sim.close()
            _reap_shard_process(shard_proc, timeout=0.0)


class TestHeartbeat:
    def test_probe_reports_dead_shard(self):
        backend = ShardedSocketBackend(shards=2)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            assert backend.check_health() == []
            _kill_shard(backend, 0)
            assert backend.check_health(timeout=5) == [0]
            # The dead slot's channel was discarded; the survivor's is
            # intact and still serving.
            assert sorted(backend._channels) == [1]
        finally:
            sim.close()

    def test_heartbeat_rebalance_recovers_before_dispatch(self):
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        backend = ShardedSocketBackend(shards=2, on_failure="rebalance",
                                       heartbeat_interval=0.0)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            _kill_shard(backend, 0)
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        _assert_no_orphans(backend)
        _assert_updates_equal(serial_second, second)

    def test_heartbeat_abort_raises_probe_error(self):
        backend = ShardedSocketBackend(shards=2,
                                       heartbeat_interval=0.0)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            _kill_shard(backend, 0)
            with pytest.raises(ShardError, match="health probe"):
                sim.train_clients(sim.client_indices())
            _assert_no_orphans(backend)
        finally:
            sim.close()


class TestCloseRaces:
    def test_concurrent_close_from_two_threads(self):
        backend = ShardedSocketBackend(shards=1)
        backend.map_ordered(_sleep_return, [0.0])
        errors = []

        def close_backend():
            try:
                backend.close()
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=close_backend)
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors
        _assert_no_orphans(backend)

    def test_close_during_inflight_batch_does_not_resurrect_rebalance(self):
        """Regression: under on_failure='rebalance', close() racing an
        in-flight batch must not be 'repaired' by the failover — the
        transports died because the owner shut the backend down, and a
        retry would respawn shard processes behind their back."""
        backend = ShardedSocketBackend(shards=1, on_failure="rebalance")
        backend.map_ordered(_sleep_return, [0.0])  # shard warm
        outcome = {}

        def run_batch():
            try:
                outcome["result"] = backend.map_ordered(
                    _sleep_return, [2.0])
            except BaseException as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run_batch)
        thread.start()
        time.sleep(0.4)  # let the batch reach the shard
        backend.close()
        thread.join(timeout=60)
        assert not thread.is_alive(), "in-flight batch hung after close()"
        if "error" in outcome:
            assert isinstance(outcome["error"],
                              (ShardError, RuntimeError))
        else:  # pragma: no cover - timing-dependent fast path
            assert outcome["result"] == [2.0]
        backend.close()
        # The key assertion: nothing was resurrected after close().
        _assert_no_orphans(backend)

    def test_close_during_inflight_batch_does_not_hang(self):
        """close() while another thread waits on a batch must leave the
        waiter with a loud error (or a completed result, if it won the
        race) — never a hang — and the backend orphan-free."""
        backend = ShardedSocketBackend(shards=1)
        backend.map_ordered(_sleep_return, [0.0])  # shard warm
        outcome = {}

        def run_batch():
            try:
                outcome["result"] = backend.map_ordered(
                    _sleep_return, [2.0])
            except BaseException as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run_batch)
        thread.start()
        time.sleep(0.4)  # let the batch reach the shard
        backend.close()
        thread.join(timeout=30)
        assert not thread.is_alive(), "in-flight batch hung after close()"
        if "error" in outcome:
            assert isinstance(outcome["error"],
                              (ShardError, RuntimeError))
        else:
            assert outcome["result"] == [2.0]
        backend.close()
        _assert_no_orphans(backend)


class TestWireCodec:
    """End-to-end behavior of delta shipping + compression on sockets."""

    def test_zlib_delta_history_bit_identical_to_serial(self):
        """The full codec (delta + zlib) cannot perturb the numerics:
        a 2-shard compressed run equals the serial reference bit for
        bit."""
        reference_history, reference_weights = _run_collaboration(None)
        backend = ShardedSocketBackend(shards=2, wire_compression="zlib")
        history, weights = _run_collaboration(backend)
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])
        _assert_no_orphans(backend)

    def test_delta_disabled_matches_serial_and_costs_more(self):
        reference_history, reference_weights = _run_collaboration(None)
        backend = ShardedSocketBackend(shards=2, delta_shipping=False)
        history, weights = _run_collaboration(backend)
        assert history.accuracies() == reference_history.accuracies()
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    def test_warm_delta_dispatch_is_many_times_smaller_than_full(self):
        """The tentpole claim at test scale: identical-resend warm
        dispatch shrinks at least 5x under delta shipping."""
        def warm_bytes(**codec_kwargs):
            sim = make_tiny_simulation()
            sim.set_backend("sharded", max_workers=2, **codec_kwargs)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            try:
                sim.run_jobs(jobs)
                return sim.backend.dispatch_payload_bytes(sim.clients,
                                                          jobs)
            finally:
                sim.close()

        full = warm_bytes(delta_shipping=False)
        delta = warm_bytes(delta_shipping=True)
        assert full >= 5 * delta

    def test_reconnect_mid_delta_falls_back_to_full_snapshot(self):
        """Satellite regression: a shard killed after the delta channel
        is warm must come back on a *full* snapshot (its decoder state
        died with it), and the retried run must stay bit-identical."""
        serial = make_tiny_simulation()
        reference = serial.run(SynchronousFLStrategy(straggler_top_k=1),
                               num_cycles=4)

        sim = make_tiny_simulation()
        backend = ShardedSocketBackend(shards=2, on_failure="rebalance")
        sim.set_backend(backend)
        # Cycle 3 killed: by then every slot's delta base is committed
        # (warm), so the retry exercises the full-snapshot fallback.
        strategy = _ShardKillingSync(backend, kill_before_cycle=3)
        try:
            history = sim.run(strategy, num_cycles=4)
            assert strategy.killed
            assert history.accuracies() == reference.accuracies()
            assert history.times_s() == reference.times_s()
            for expected, actual in zip(
                    serial.server.get_global_weights().values(),
                    sim.server.get_global_weights().values()):
                np.testing.assert_array_equal(expected, actual)
            # The failover reset every slot's encoder base, but the
            # channel re-warms: after one post-run batch establishes a
            # new base, an identical resend is back to delta-skip size,
            # far below one full weights table.
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            sim.run_jobs(jobs)
            warm = backend.dispatch_payload_bytes(sim.clients, jobs)
            full_table = sum(value.nbytes for value in weights.values())
            assert warm < full_table
        finally:
            sim.close()

    def test_forced_base_divergence_recovers_with_full_resend(self):
        """Satellite regression: if the parent's committed base somehow
        runs ahead of a shard's decoder state (lost acknowledgement),
        the shard's DeltaBaseMismatchError reply triggers an in-batch
        full resend — the cycle completes, bit-identical."""
        reference_sim = make_tiny_simulation()
        reference_updates = reference_sim.train_clients(
            reference_sim.client_indices())
        reference_updates_2 = reference_sim.train_clients(
            reference_sim.client_indices())
        reference_sim.close()

        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            updates = sim.train_clients(sim.client_indices())
            _assert_updates_equal(reference_updates, updates)
            # Corrupt the parent side: every committed sequence number
            # moves ahead of what the shards acknowledged.
            for state in backend._tx_states.values():
                assert state.base is not None  # channel is warm
                state.seq += 5
            updates_2 = sim.train_clients(sim.client_indices())
            _assert_updates_equal(reference_updates_2, updates_2)
            # The recovery re-established the delta channel: the next
            # identical dispatch is delta-skip sized again.
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            full_table = sum(value.nbytes for value in weights.values())
            assert backend.dispatch_payload_bytes(sim.clients,
                                                  jobs) < full_table
        finally:
            sim.close()
