"""End-to-end and failure-injection tests of the sharded socket backend.

Three guarantees under test:

* a 2-shard localhost fleet produces *bit-identical* histories to the
  serial backend under a fixed seed (the trust anchor of the whole
  multi-host story);
* a shard dying mid-cycle aborts the batch with a :class:`ShardError`
  naming the shard, and ``close()`` leaves no orphan processes or
  sockets — double-close and close-after-shard-death included;
* clean close/reconnect semantics: a closed backend lazily respawns its
  shards and continues every client's RNG stream exactly where it
  stopped.
"""

import numpy as np
import pytest

from repro.baselines import SynchronousFLStrategy
from repro.fl import ShardedSocketBackend, ShardError, TrainingJob

from ..conftest import FAST_DEVICE, make_tiny_simulation


def _run_collaboration(backend, num_cycles=3):
    """History + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    if backend is not None:
        sim.set_backend(backend)
    try:
        history = sim.run(SynchronousFLStrategy(straggler_top_k=1),
                          num_cycles=num_cycles)
        weights = sim.server.get_global_weights()
    finally:
        sim.close()
    return history, weights


def _assert_no_orphans(backend):
    """The backend holds no live channels and no live shard processes."""
    assert not backend._channels
    assert not backend._live_addresses
    assert not backend._procs


def _print_much(value):
    """Floods the shard's stdout far past the OS pipe buffer."""
    print("n" * 100_000)
    return value


def test_announce_read_survives_leading_stdout_junk():
    """Regression: output flushed in the same pipe chunk as the announce
    line (import-time warning, sitecustomize print) must not make the
    spawn time out."""
    import subprocess
    import sys

    from repro.fl.executor import _read_shard_announce
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "print('junk line'); "
         "print('SHARD_LISTENING 127.0.0.1 1234', flush=True); "
         "import time; time.sleep(30)"],
        stdout=subprocess.PIPE, text=True)
    try:
        assert _read_shard_announce(proc, timeout=10) == ("127.0.0.1", 1234)
    finally:
        proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()


def test_noisy_shard_stdout_does_not_deadlock():
    """Regression: an auto-spawned shard writing to stdout mid-batch must
    not fill the announce pipe and hang the fleet (the parent drains it)."""
    backend = ShardedSocketBackend(shards=1)
    try:
        assert backend.map_ordered(_print_much, [0, 1, 2]) == [0, 1, 2]
    finally:
        backend.close()
    _assert_no_orphans(backend)


class TestTwoShardFleet:
    def test_history_bit_identical_to_serial(self):
        """Acceptance: a 2-shard localhost fleet end-to-end equals serial."""
        reference_history, reference_weights = _run_collaboration(None)
        backend = ShardedSocketBackend(shards=2)
        history, weights = _run_collaboration(backend)
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        assert ([record.mean_train_loss for record in history.records]
                == [record.mean_train_loss
                    for record in reference_history.records])
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])
        _assert_no_orphans(backend)

    def test_fleet_spans_both_shards(self):
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            assert set(backend._placement.values()) == {0, 1}
            assert len(backend._procs) == 2
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
        finally:
            sim.close()
        _assert_no_orphans(backend)

    def test_dispatch_bytes_measured_and_match_persistent(self):
        """Warm sharded dispatch is the persistent wire format on sockets:
        byte-for-byte the same payload size."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights)
                for index in sim.client_indices()]
        try:
            cold = backend.dispatch_payload_bytes(sim.clients, jobs)
            sim.run_jobs(jobs)
            assert backend.last_dispatch_bytes == cold
            warm = backend.dispatch_payload_bytes(sim.clients, jobs)
            assert warm < cold  # specs (datasets!) no longer travel
        finally:
            sim.close()

        persistent_sim = make_tiny_simulation()
        persistent = persistent_sim.set_backend("persistent", max_workers=2)
        try:
            persistent_sim.run_jobs(jobs)
            persistent_warm = persistent.dispatch_payload_bytes(
                persistent_sim.clients, jobs)
        finally:
            persistent_sim.close()
        assert warm == persistent_warm


class TestFailureInjection:
    def test_shard_killed_mid_cycle_propagates_identity(self):
        """Killing a shard worker aborts the batch with the shard's
        identity in the error, and tears the fleet down orphan-free."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())  # shards warm
            victim_slot = 0
            victim = backend._procs[victim_slot]
            survivor = backend._procs[1]
            address = backend.shard_address(victim_slot)
            victim.kill()
            victim.wait(timeout=10)
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            error = excinfo.value
            assert error.slot == victim_slot
            assert error.address == address
            assert f"{address[0]}:{address[1]}" in str(error)
            # The batch abort closed the backend: both shard processes
            # are gone, no sockets remain.
            _assert_no_orphans(backend)
            assert survivor.poll() is not None
        finally:
            sim.close()  # idempotent on the already-closed backend
        _assert_no_orphans(backend)

    def test_close_after_shard_death_is_safe(self):
        """Regression: close() on a backend whose shard was killed
        externally must not raise (and stays idempotent)."""
        backend = ShardedSocketBackend(shards=2)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            for proc in backend._procs.values():
                proc.kill()
                proc.wait(timeout=10)
        finally:
            sim.close()
        sim.close()
        backend.close()
        _assert_no_orphans(backend)

    def test_unreachable_shard_aborts_and_closes(self):
        """A shard address nobody listens on fails the batch with the
        shard's identity and leaves the backend fully closed."""
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        backend = ShardedSocketBackend(
            shards=[f"127.0.0.1:{free_port}"], connect_timeout=2)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            assert excinfo.value.address == ("127.0.0.1", free_port)
            _assert_no_orphans(backend)
        finally:
            sim.close()

    def test_training_error_does_not_kill_shards(self):
        """A job raising *inside* a shard surfaces the original exception
        (not a ShardError) and leaves the shards serving."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        weights = sim.server.get_global_weights()
        try:
            sim.train_clients(sim.client_indices())
            with pytest.raises(ValueError, match="local_epochs"):
                sim.run_jobs([TrainingJob(index=0, weights=weights,
                                          local_epochs=0)])
            assert all(proc.poll() is None
                       for proc in backend._procs.values())
            # The failed client's replica was dropped; the next batch
            # re-ships its spec and trains fine.
            updates = sim.train_clients(sim.client_indices())
            assert [update.client_id for update in updates] == [0, 1, 2]
        finally:
            sim.close()
        _assert_no_orphans(backend)


class TestCloseReconnect:
    def test_reuse_after_close_continues_rng_streams(self):
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        sim = make_tiny_simulation()
        backend = sim.set_backend("sharded", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            first_procs = list(backend._procs.values())
            backend.close()
            _assert_no_orphans(backend)
            assert all(proc.poll() is not None for proc in first_procs)
            # Lazy respawn: fresh shard processes, specs re-shipped, RNG
            # streams continued — bit-identical to uninterrupted serial.
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for expected, actual in zip(serial_second, second):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_fleet_mutations_stay_bit_identical(self):
        """add_client + device swap mid-run match a serial run exactly."""
        def run(backend_name):
            from repro.fl import ClientConfig, FLClient
            from ..conftest import make_tiny_dataset, make_tiny_model
            sim = make_tiny_simulation()
            if backend_name != "serial":
                sim.set_backend(backend_name, max_workers=2)
            try:
                sim.train_clients(sim.client_indices())
                sim.add_client(FLClient(
                    client_id=3, dataset=make_tiny_dataset(40, seed=9),
                    device=FAST_DEVICE.scaled(name="joiner"),
                    model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20)))
                sim.set_client_device(
                    1, FAST_DEVICE.scaled(compute=0.5, name="throttled"))
                return sim.train_clients(sim.client_indices())
            finally:
                sim.close()

        serial_updates = run("serial")
        sharded_updates = run("sharded")
        assert [update.client_name for update in sharded_updates] \
            == [update.client_name for update in serial_updates]
        for expected, actual in zip(serial_updates, sharded_updates):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])
