"""Protocol tests for the shard transport (:mod:`repro.fl.transport`).

The contract: framed messages round-trip losslessly, every category of
malformed traffic (truncated frames, oversized announcements, garbage
payloads, version-mismatched hellos) surfaces as an explicit
:class:`TransportError` subclass instead of a hang or a bare socket
error, and the shard server survives misbehaving connections —
including connections racing each other into the listen backlog and
reconnects that resume the previous session's resident fleet.
"""

import contextlib
import errno
import os
import pickle
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.fl.transport import (PROTOCOL_VERSION, ConnectionClosedError,
                                FrameTooLargeError, MalformedMessageError,
                                MessageChannel, ProtocolError,
                                ProtocolVersionError, ShardServer,
                                TransportError, TruncatedFrameError,
                                connect_to_shard, format_address,
                                parse_address, serve_shard)


def _channel_pair(max_frame_bytes=1 << 20):
    left, right = socket.socketpair()
    return (MessageChannel(left, max_frame_bytes),
            MessageChannel(right, max_frame_bytes))


@contextlib.contextmanager
def _shard_server(**kwargs):
    """A live in-process shard server; yields its (host, port)."""
    ready = threading.Event()
    address = {}

    def on_ready(host, port):
        address["host"], address["port"] = host, port
        ready.set()

    thread = threading.Thread(target=serve_shard,
                              kwargs={**kwargs, "ready": on_ready},
                              daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "shard server did not come up"
    try:
        yield address["host"], address["port"]
    finally:
        # Shut the server down so the thread exits (and the port is
        # freed).
        try:
            channel = connect_to_shard((address["host"], address["port"]),
                                       timeout=5)
            channel.send(("shutdown", None))
            channel.close()
        except TransportError:
            pass  # already gone
        thread.join(timeout=10)
        assert not thread.is_alive()


@pytest.fixture
def shard_server():
    """Default-configured in-process shard server; yields (host, port)."""
    with _shard_server() as address:
        yield address


class TestAddressParsing:
    def test_host_port_string(self):
        assert parse_address("node-3:7600") == ("node-3", 7600)

    def test_tuple_passthrough(self):
        assert parse_address(("10.0.0.1", 7601)) == ("10.0.0.1", 7601)

    @pytest.mark.parametrize("bad", ["no-port", ":7600", "host:", 42])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_format_round_trips(self):
        assert parse_address(format_address(("h", 1))) == ("h", 1)


class TestFraming:
    def test_message_round_trip(self):
        left, right = _channel_pair()
        payload = {"weights": np.arange(100.0), "nested": [1, (2, "x")]}
        left.send(("run", payload))
        kind, received = right.recv()
        assert kind == "run"
        np.testing.assert_array_equal(received["weights"],
                                      payload["weights"])
        assert received["nested"] == payload["nested"]
        left.close()
        right.close()

    def test_many_messages_in_order(self):
        left, right = _channel_pair()
        for index in range(20):
            left.send(("seq", index))
        assert [right.recv()[1] for _ in range(20)] == list(range(20))
        left.close()
        right.close()

    def test_empty_payload_frame(self):
        left, right = _channel_pair()
        left.send_bytes(b"")
        assert right.recv_bytes() == b""
        left.close()
        right.close()

    def test_clean_close_between_frames(self):
        left, right = _channel_pair()
        left.send(("ping", None))
        right.recv()
        left.close()
        with pytest.raises(ConnectionClosedError):
            right.recv()

    def test_truncated_header_raises(self):
        left, right = _channel_pair()
        left._socket().sendall(b"\x00\x00")  # half a length header
        left.close()
        with pytest.raises(TruncatedFrameError):
            right.recv()

    def test_truncated_payload_raises(self):
        left, right = _channel_pair()
        left._socket().sendall(struct.pack(">I", 100) + b"only-ten-b")
        left.close()
        with pytest.raises(TruncatedFrameError):
            right.recv()

    def test_oversized_announcement_raises(self):
        left, right = _channel_pair(max_frame_bytes=1024)
        left._socket().sendall(struct.pack(">I", 4096))
        with pytest.raises(FrameTooLargeError):
            right.recv()
        left.close()
        right.close()

    def test_oversized_send_rejected_locally(self):
        left, right = _channel_pair(max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError):
            left.send_bytes(b"x" * 65)
        left.close()
        right.close()

    def test_garbage_payload_raises_malformed(self):
        left, right = _channel_pair()
        left.send_bytes(b"this is not a pickle")
        with pytest.raises(MalformedMessageError):
            right.recv()
        left.close()
        right.close()

    def test_non_tuple_message_raises_malformed(self):
        left, right = _channel_pair()
        left.send_bytes(pickle.dumps({"kind": "run"}))
        with pytest.raises(MalformedMessageError):
            right.recv()
        left.close()
        right.close()

    def test_closed_channel_refuses_io(self):
        left, right = _channel_pair()
        left.close()
        assert left.closed
        with pytest.raises(ConnectionClosedError):
            left.send(("ping", None))
        with pytest.raises(ConnectionClosedError):
            left.recv()
        left.close()  # idempotent
        right.close()

    @pytest.mark.parametrize("bad_limit", [0, -1, (1 << 32)])
    def test_invalid_max_frame_bytes_rejected(self, bad_limit):
        """Zero/negative limits and limits beyond the 4-byte header's
        range (which would make send_bytes die in struct.pack) are
        rejected at construction."""
        left, right = socket.socketpair()
        with pytest.raises(ValueError):
            MessageChannel(left, max_frame_bytes=bad_limit)
        left.close()
        right.close()


class TestHandshake:
    def test_hello_round_trip(self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("ping", None))
        kind, payload = channel.recv()
        assert kind == "pong"
        assert payload == {"residents": 0}
        channel.close()

    def test_version_mismatch_raises_instead_of_hanging(self, shard_server):
        with pytest.raises(ProtocolVersionError,
                           match=f"protocol {PROTOCOL_VERSION}"):
            connect_to_shard(shard_server, timeout=5,
                             protocol=PROTOCOL_VERSION + 1)

    def test_server_survives_bad_hello_then_serves(self, shard_server):
        # A connection that never says hello is dropped ...
        host, port = shard_server
        raw = socket.create_connection((host, port), timeout=5)
        bad = MessageChannel(raw)
        bad.send(("run", None))  # not a hello
        kind, payload = bad.recv()
        assert kind == "error"
        assert isinstance(payload, ProtocolError)
        bad.close()
        # ... and the server accepts the next, well-behaved client.
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()

    def test_connect_to_unreachable_shard_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            connect_to_shard(("127.0.0.1", free_port), timeout=2)


class TestShardServerLoop:
    def test_unknown_kind_answered_with_error(self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("frobnicate", None))
        kind, payload = channel.recv()
        assert kind == "error"
        assert isinstance(payload, ProtocolError)
        assert "frobnicate" in str(payload)
        # The connection is still usable afterwards.
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()

    def test_garbage_frame_answered_then_connection_usable(
            self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send_bytes(b"not a pickle at all")
        kind, payload = channel.recv()
        assert kind == "error"
        assert isinstance(payload, MalformedMessageError)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()

    def test_abrupt_disconnect_then_reconnect(self, shard_server):
        first = connect_to_shard(shard_server, timeout=5)
        first.close()  # no polite bye
        second = connect_to_shard(shard_server, timeout=5)
        second.send(("ping", None))
        assert second.recv()[0] == "pong"
        second.close()

    def test_map_request_round_trips(self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("map", (_triple, [(0, 2), (1, 5)])))
        kind, payload = channel.recv()
        assert kind == "ok"
        assert payload == [(0, 6), (1, 15)]
        channel.close()

    def test_map_error_reported(self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("map", (_explode, [(0, 1)])))
        kind, payload = channel.recv()
        assert kind == "error"
        assert isinstance(payload, ZeroDivisionError)
        channel.close()

    def test_unpicklable_reply_reported_and_server_survives(
            self, shard_server):
        """Regression: a successful map whose *result* does not pickle
        must degrade to an error reply, not crash the shard or hang the
        waiting parent."""
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(("map", (_make_unpicklable, [(0, 1)])))
        kind, payload = channel.recv()
        assert kind == "error"
        assert "pickle" in str(payload)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()

    @pytest.mark.parametrize("message", [
        ("run", "not a wire batch"),
        ("map", None),  # unpacking (fn, items) raises
    ])
    def test_bad_request_payload_reported_and_server_survives(
            self, shard_server, message):
        """Regression: a structurally valid message whose payload blows
        up the handler must not crash a long-running shard server."""
        channel = connect_to_shard(shard_server, timeout=5)
        channel.send(message)
        kind, payload = channel.recv()
        assert kind == "error"
        assert isinstance(payload, BaseException)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()


class TestListenBacklog:
    def test_racing_connections_queue_instead_of_timing_out(
            self, shard_server):
        """Regression: ``listen(1)`` dropped the SYNs of connections
        racing a busy server (a reconnect overlapping a half-closed
        predecessor, overlapping parents), hanging them until their
        connect timeout.  A real backlog must absorb them."""
        host, port = shard_server
        # Occupy the server: it is inside this connection's serve loop,
        # so everything below lands in the listen backlog.
        busy = connect_to_shard(shard_server, timeout=5)
        racers = []
        try:
            for _ in range(6):
                racers.append(
                    socket.create_connection((host, port), timeout=5))
        finally:
            for racer in racers:
                racer.close()
            busy.close()
        # The server drains the abandoned racers (their handshakes fail
        # fast) and serves a fresh connection.
        channel = connect_to_shard(shard_server, timeout=10)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        channel.close()


class TestOversizedFrameHandling:
    def test_oversized_frame_drops_connection_then_server_recovers(self):
        """Regression guard for the post-``FrameTooLargeError`` path:
        the announced payload was never read, so the stream is
        desynchronized and the server must close the connection rather
        than return to ``recv`` — and then accept the next client."""
        with _shard_server(max_frame_bytes=4096) as address:
            channel = connect_to_shard(address, timeout=5)
            channel.send_bytes(b"x" * 8192)  # above the server's limit
            channel.settimeout(10)
            with pytest.raises((ConnectionClosedError,
                                TruncatedFrameError)):
                channel.recv()  # server hangs up instead of replying
            channel.close()
            again = connect_to_shard(address, timeout=5)
            again.send(("ping", None))
            assert again.recv()[0] == "pong"
            again.close()


class TestSessionResume:
    def _train_one_resident(self, address, session):
        """Connect under ``session`` and leave one resident on the shard."""
        from repro.fl.executor import _WireBatch, _WireGroup, _WireJob

        from ..conftest import (make_device, make_tiny_dataset,
                                make_tiny_model)
        from repro.fl.client import ClientConfig, ClientSpec

        spec = ClientSpec(client_id=0, dataset=make_tiny_dataset(20),
                          device=make_device(), model_factory=make_tiny_model,
                          config=ClientConfig(batch_size=10))
        weights = make_tiny_model().get_weights()
        batch = _WireBatch(
            weights_table=[weights],
            groups=[_WireGroup(
                index=0, spec=spec,
                rng_state=spec.initial_rng().bit_generator.state,
                jobs=[_WireJob(weights_ref=0, mask=None, local_epochs=None,
                               base_cycle=0)])])
        channel = connect_to_shard(address, timeout=5, session=session)
        channel.send(("run", batch))
        kind, results = channel.recv()
        assert kind == "results"
        assert results[0][1] == "ok"
        return channel

    def _residents(self, address, session):
        """Reconnect under ``session``; returns (resumed, residents)."""
        channel = connect_to_shard(address, timeout=5, session=session)
        channel.send(("ping", None))
        kind, payload = channel.recv()
        assert kind == "pong"
        resumed = channel.resumed
        channel.close()
        return resumed, payload["residents"]

    def test_same_session_resumes_residents_after_abrupt_drop(self):
        with _shard_server() as address:
            first = self._train_one_resident(address, "session-a")
            assert first.resumed is False
            first.close()  # abrupt: no polite bye
            assert self._residents(address, "session-a") == (True, 1)

    def test_different_session_starts_clean_and_does_not_wipe_others(self):
        """A new token gets a fresh fleet, and — unlike the old
        single-session server — connecting it must *not* destroy another
        session's residents: sessions are isolated, not exclusive."""
        with _shard_server() as address:
            self._train_one_resident(address, "session-a").close()
            assert self._residents(address, "session-b") == (False, 0)
            # session-a's fleet survived session-b's visit.
            assert self._residents(address, "session-a") == (True, 1)

    def test_two_live_sessions_hold_separate_fleets(self):
        """Resident isolation: two sessions train on one shard at the
        same time and each only ever sees its own resident."""
        with _shard_server() as address:
            a = self._train_one_resident(address, "session-a")
            b = self._train_one_resident(address, "session-b")
            for channel in (a, b):
                channel.send(("ping", None))
                assert channel.recv() == ("pong", {"residents": 1})
            a.close()
            b.close()

    def test_no_session_token_never_resumes(self):
        with _shard_server() as address:
            channel = self._train_one_resident(address, None)
            assert channel.resumed is False
            channel.close()
            assert self._residents(address, None) == (False, 0)

    def test_polite_bye_clears_fleet_and_token(self):
        """After a ``bye`` the run is over: a same-token reconnect must
        start clean instead of resuming an emptied fleet."""
        with _shard_server() as address:
            channel = self._train_one_resident(address, "session-a")
            channel.send(("bye", None))
            channel.close()
            assert self._residents(address, "session-a") == (False, 0)


class TestCodecNegotiation:
    def test_hello_without_codec_stays_on_pickles(self, shard_server):
        channel = connect_to_shard(shard_server, timeout=5)
        assert channel.codec_compression is None
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"  # plain-pickled reply
        channel.close()

    @pytest.mark.parametrize("requested,granted", [
        ("none", "none"), ("zlib", "zlib"), ("snappy", "none")])
    def test_hello_negotiates_compression(self, shard_server, requested,
                                          granted):
        channel = connect_to_shard(shard_server, timeout=5,
                                   codec={"version": 1,
                                          "compression": requested})
        assert channel.codec_compression == granted
        channel.close()

    def test_codec_connection_gets_codec_replies(self, shard_server):
        from repro.fl import codec

        channel = connect_to_shard(shard_server, timeout=5,
                                   codec={"version": 1,
                                          "compression": "none"})
        channel.send_bytes(pickle.dumps(("ping", None)))
        blob = channel.recv_bytes()
        assert codec.is_codec_frame(blob)
        kind, payload = codec.decode_message(blob)
        assert kind == "pong"
        assert payload == {"residents": 0}
        channel.close()

    def test_codec_framed_run_round_trips(self, shard_server):
        """A codec-framed, delta-stateful run request trains a resident
        on a real shard server and the reply decodes."""
        from repro.fl import codec
        from repro.fl.executor import _WireBatch, _WireGroup, _WireJob

        from ..conftest import (make_device, make_tiny_dataset,
                                make_tiny_model)
        from repro.fl.client import ClientConfig, ClientSpec

        spec = ClientSpec(client_id=0, dataset=make_tiny_dataset(20),
                          device=make_device(),
                          model_factory=make_tiny_model,
                          config=ClientConfig(batch_size=10))
        weights = make_tiny_model().get_weights()
        batch = _WireBatch(
            weights_table=[weights],
            groups=[_WireGroup(
                index=0, spec=spec,
                rng_state=spec.initial_rng().bit_generator.state,
                jobs=[_WireJob(weights_ref=0, mask=None, local_epochs=None,
                               base_cycle=0)])])
        channel = connect_to_shard(shard_server, timeout=5,
                                   codec={"version": 1,
                                          "compression": "zlib"})
        encoder = codec.DeltaEncoderState()
        frame = codec.encode_message(("run", batch), compression="zlib",
                                     delta_state=encoder)
        channel.send_frame(frame)
        kind, results = codec.decode_message(channel.recv_bytes())
        assert kind == "results"
        assert results[0][1] == "ok"
        channel.close()

    def test_structurally_bad_codec_frames_do_not_kill_the_server(
            self, shard_server):
        """Regression: a codec frame whose skeleton unpickles but is
        structurally broken (a skip-delta without base_seq against an
        empty decoder, a delta attached to a payload without a
        weights_table slot) must degrade to an error reply — never an
        unhandled AttributeError that takes the shard down."""
        from repro.fl import codec
        from repro.fl.codec import _MODE_SKIP, _DeltaTable

        channel = connect_to_shard(shard_server, timeout=5,
                                   codec={"version": 1,
                                          "compression": "none"})
        # Case 1: skip entry, base_seq None, decoder holds no base.
        skeleton = pickle.dumps(
            ("run", None,
             _DeltaTable(None, 1, [[("w", _MODE_SKIP, None)]])), 5)
        header = codec._HEADER.pack(codec.CODEC_MAGIC,
                                    codec.CODEC_VERSION, 0, 0, 1)
        frame = (header + codec._SEGMENT_ENTRY.pack(len(skeleton), 0)
                 + skeleton)
        channel.send_bytes(frame)
        kind, payload = codec.decode_message(channel.recv_bytes())
        assert kind == "error"
        assert isinstance(payload, BaseException)
        # Case 2: delta table attached to a payload that has no
        # weights_table attribute (None).
        batch = codec.encode_message(
            ("run", None),
            delta_state=codec.DeltaEncoderState())  # payload is None
        # ... the encoder refuses to delta a table-less payload, so
        # craft the skeleton by hand:
        skeleton = pickle.dumps(
            ("run", 42, _DeltaTable(None, 1, [])), 5)
        frame = (header + codec._SEGMENT_ENTRY.pack(len(skeleton), 0)
                 + skeleton)
        channel.send_bytes(frame)
        kind, payload = codec.decode_message(channel.recv_bytes())
        assert kind == "error"
        # The server survives both and keeps serving.
        channel.send_bytes(pickle.dumps(("ping", None)))
        assert codec.decode_message(channel.recv_bytes())[0] == "pong"
        channel.close()

    def test_delta_mismatch_reported_not_fatal(self, shard_server):
        """A delta frame against a base the shard lacks gets an explicit
        DeltaBaseMismatchError reply, and the connection keeps serving."""
        from repro.fl import codec
        from repro.fl.executor import _WireBatch

        channel = connect_to_shard(shard_server, timeout=5,
                                   codec={"version": 1,
                                          "compression": "none"})
        encoder = codec.DeltaEncoderState()
        batch = _WireBatch(weights_table=[{"w": np.arange(10.0)}],
                           groups=[])
        first = codec.encode_message(("run", batch), delta_state=encoder)
        # Pretend a previous frame was acknowledged: commit without ever
        # sending it, so our base is ahead of the shard's.
        encoder.commit(first.pending_base, first.pending_seq)
        stale = codec.encode_message(("run", batch), delta_state=encoder)
        channel.send_frame(stale)
        kind, payload = codec.decode_message(channel.recv_bytes())
        assert kind == "error"
        assert isinstance(payload, codec.DeltaBaseMismatchError)
        # The connection survives; a full resend is accepted.
        encoder.reset()
        full = codec.encode_message(("run", batch), delta_state=encoder,
                                    force_full=True)
        channel.send_frame(full)
        kind, _ = codec.decode_message(channel.recv_bytes())
        assert kind == "results"
        channel.close()


@contextlib.contextmanager
def _running_server(server):
    """Drive a directly constructed ShardServer on a thread."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.address
    finally:
        try:
            channel = connect_to_shard(server.address, timeout=5)
            channel.send(("shutdown", None))
            channel.close()
        except (TransportError, OSError):
            pass
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestTcpNodelay:
    def test_shard_channels_enable_nodelay(self, shard_server):
        """Regression: small control frames (ping/pong, delta headers)
        must not eat Nagle + delayed-ACK round trips."""
        channel = connect_to_shard(shard_server, timeout=5)
        sock = channel._socket()
        assert sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
        channel.close()

    def test_non_tcp_sockets_survive_the_toggle(self):
        left, right = _channel_pair()  # AF_UNIX: no Nagle to disable
        left.send(("ping", None))
        assert right.recv()[0] == "ping"
        left.set_tcp_nodelay(False)  # no-op off TCP, must not raise
        left.set_tcp_nodelay(True)
        left.close()
        right.close()
        left.set_tcp_nodelay(True)  # no-op on a closed channel


class TestConcurrentSessions:
    """One shard fleet serving several live parent sessions at once."""

    def test_two_live_sessions_are_isolated(self, shard_server):
        a = connect_to_shard(shard_server, timeout=5, session="tenant-a")
        b = connect_to_shard(shard_server, timeout=5, session="tenant-b")
        # Both connections are live simultaneously and interleave freely.
        for _ in range(3):
            a.send(("map", (_triple, [(0, 2)])))
            b.send(("map", (_triple, [(0, 10)])))
            assert a.recv() == ("ok", [(0, 6)])
            assert b.recv() == ("ok", [(0, 30)])
        a.close()
        b.close()

    def test_ping_answered_while_sibling_session_trains(self, shard_server):
        """Heartbeat liveness: a sibling session's batch occupying the
        worker thread must not delay another session's ping — the event
        loop answers control traffic inline."""
        busy = connect_to_shard(shard_server, timeout=5, session="tenant-a")
        probe = connect_to_shard(shard_server, timeout=5,
                                 session="tenant-b")
        busy.send(("map", (_sleep_echo, [(0, 1.5)])))
        time.sleep(0.3)  # let the worker pick the slow request up
        probe.settimeout(5)
        start = time.monotonic()
        probe.send(("ping", None))
        assert probe.recv()[0] == "pong"
        assert time.monotonic() - start < 1.0, \
            "ping waited behind a sibling session's batch"
        assert busy.recv() == ("ok", [(0, 1.5)])
        busy.close()
        probe.close()

    def test_same_token_second_connection_takes_over(self, shard_server):
        first = connect_to_shard(shard_server, timeout=5, session="tenant")
        second = connect_to_shard(shard_server, timeout=5, session="tenant")
        assert second.resumed is True
        # The stale predecessor was dropped by the server ...
        first.settimeout(10)
        with pytest.raises((TransportError, OSError)):
            first.recv()
        first.close()
        # ... and the takeover connection serves normally.
        second.send(("ping", None))
        assert second.recv()[0] == "pong"
        second.close()

    def test_lru_disconnected_session_evicted_at_capacity(self):
        with _shard_server(max_sessions=2) as address:
            connect_to_shard(address, timeout=5, session="tenant-a").close()
            time.sleep(0.05)
            connect_to_shard(address, timeout=5, session="tenant-b").close()
            time.sleep(0.05)
            # The table is full; tenant-c evicts the least recently
            # active disconnected session (tenant-a).
            connect_to_shard(address, timeout=5, session="tenant-c").close()
            b = connect_to_shard(address, timeout=5, session="tenant-b")
            assert b.resumed is True
            b.close()
            a = connect_to_shard(address, timeout=5, session="tenant-a")
            assert a.resumed is False
            a.close()

    def test_all_live_sessions_refuse_new_token(self):
        with _shard_server(max_sessions=1) as address:
            live = connect_to_shard(address, timeout=5, session="tenant-a")
            with pytest.raises(ProtocolError, match="capacity"):
                connect_to_shard(address, timeout=5, session="tenant-b")
            # Anonymous connections take no table slot, so they still
            # work, and the live session is unaffected throughout.
            anon = connect_to_shard(address, timeout=5)
            anon.send(("ping", None))
            assert anon.recv()[0] == "pong"
            anon.close()
            live.send(("ping", None))
            assert live.recv()[0] == "pong"
            live.close()


class TestLivenessDeadlines:
    def test_stalled_mid_frame_peer_dropped_not_wedged(self):
        """Regression: a parent stalling mid-frame used to wedge the
        whole server forever (unbounded ``recv``).  Now only that
        connection is dropped, its session stays resumable, and other
        parents are served throughout."""
        with _shard_server(read_deadline=1.0) as address:
            stalled = connect_to_shard(address, timeout=5,
                                       session="tenant-a")
            # Claim a 64-byte frame but deliver only 3 bytes.
            stalled._socket().sendall(struct.pack(">I", 64) + b"abc")
            # While it stalls, another parent is served immediately.
            other = connect_to_shard(address, timeout=5)
            other.send(("ping", None))
            assert other.recv()[0] == "pong"
            other.close()
            # The stalled connection is dropped within the deadline ...
            stalled.settimeout(10)
            with pytest.raises((ConnectionClosedError,
                                TruncatedFrameError, OSError)):
                stalled.recv()
            stalled.close()
            # ... and its session remains resumable.
            again = connect_to_shard(address, timeout=5,
                                     session="tenant-a")
            assert again.resumed is True
            again.close()

    def test_idle_between_frames_is_not_dropped(self):
        """The deadline bounds wedged peers, not quiet ones: parents
        legitimately sit idle between cycles."""
        with _shard_server(read_deadline=0.5) as address:
            channel = connect_to_shard(address, timeout=5)
            time.sleep(1.2)  # idle well past the read deadline
            channel.send(("ping", None))
            assert channel.recv()[0] == "pong"
            channel.close()

    def test_silent_connection_dropped_after_handshake_timeout(self):
        with _shard_server(handshake_timeout=0.5) as address:
            raw = socket.create_connection(address, timeout=5)
            raw.settimeout(10)
            assert raw.recv(1) == b""  # the server hung up
            raw.close()
            # The server still serves well-behaved clients.
            channel = connect_to_shard(address, timeout=5)
            channel.send(("ping", None))
            assert channel.recv()[0] == "pong"
            channel.close()


class _FlakyAcceptServer(ShardServer):
    """Fails the first N ``accept()`` calls with a transient OSError."""

    def __init__(self, failures, errno_code, **kwargs):
        super().__init__(**kwargs)
        self.failures_left = failures
        self.errno_code = errno_code

    def _accept(self):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise OSError(self.errno_code, os.strerror(self.errno_code))
        return super()._accept()


class TestAcceptErrors:
    @pytest.mark.parametrize("errno_code",
                             [errno.EMFILE, errno.ECONNABORTED])
    def test_transient_accept_errors_back_off_and_recover(
            self, errno_code, capfd):
        """Regression: a transient ``accept()`` OSError (fd exhaustion,
        a connection aborted in the backlog) silently broke the serve
        loop.  It must back off, say so on stderr, and keep serving."""
        server = _FlakyAcceptServer(2, errno_code)
        with _running_server(server) as address:
            channel = connect_to_shard(address, timeout=10)
            channel.send(("ping", None))
            assert channel.recv()[0] == "pong"
            channel.close()
            assert server.failures_left == 0
        assert "accept() failed" in capfd.readouterr().err

    def test_listener_closure_ends_the_serve_loop(self):
        server = ShardServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        channel = connect_to_shard(server.address, timeout=5)
        channel.send(("ping", None))
        assert channel.recv()[0] == "pong"
        server.close()  # listener closure, not a transient error
        thread.join(timeout=10)
        assert not thread.is_alive()
        channel.close()


def _triple(value):
    """Module-level map function (picklable for shard traffic)."""
    return value * 3


def _sleep_echo(value):
    time.sleep(value)
    return value


def _explode(value):
    return value / 0


def _make_unpicklable(value):
    return lambda: value  # lambdas don't pickle
