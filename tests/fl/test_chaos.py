"""Chaos engine tests: seeded fault plans, retry policies, degradation.

Three layers under test:

* the pure pieces — :class:`RetryPolicy` backoff math and validation,
  :func:`seeded_jitter`, :class:`FaultPlan` stream determinism;
* fault injection against live resident backends — scheduled shard
  kills recover bit-identically under ``rebalance`` and drop exactly
  the dead shard's clients under ``degrade``, across both resident
  backends (the tier-1 chaos suite of the acceptance criteria);
* the regression corners of the retry substrate — heartbeat-probe
  failover with delta shipping enabled (probe → rebalance → base reset
  → full-snapshot resend) and two shards SIGKILLed in the same batch.
"""

import numpy as np
import pytest

from repro.fl.chaos import (ChaosController, FaultPlan, FrameFault,
                            ShardKill, StragglerWave, seeded_jitter)
from repro.fl.executor import (PersistentProcessBackend, RetryPolicy,
                               ShardedSocketBackend, make_backend)

from ..conftest import make_tiny_simulation


# ---------------------------------------------------------------------- #
# RetryPolicy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_defaults_reproduce_legacy_constants(self):
        policy = RetryPolicy()
        assert policy.attempt_limit(3) == 6
        assert policy.attempt_limit(1) == 4
        assert policy.backoff_delay(1) == 0.0
        assert policy.drain_timeout_s == 600.0
        assert policy.reconnect_attempts == 1

    @pytest.mark.parametrize("kwargs, match", [
        ({"max_attempts": 0}, "max_attempts"),
        ({"backoff_base_s": -1.0}, "backoff_base_s"),
        ({"backoff_multiplier": 0.5}, "backoff_multiplier"),
        ({"backoff_max_s": 0.0}, "backoff_max_s"),
        ({"jitter": 1.5}, "jitter"),
        ({"budget_s": 0.0}, "budget_s"),
        ({"drain_timeout_s": 0.0}, "drain_timeout_s"),
        ({"reconnect_attempts": 0}, "reconnect_attempts"),
        ({"breaker_threshold": 0}, "breaker_threshold"),
    ])
    def test_rejects_non_positive_knobs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown retry policy key "
                                             "'attempts'"):
            RetryPolicy.from_spec({"attempts": 3})

    def test_backoff_grows_exponentially_and_clamps(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_multiplier=2.0,
                             backoff_max_s=3.0)
        assert policy.backoff_delay(1) == 1.0
        assert policy.backoff_delay(2) == 2.0
        assert policy.backoff_delay(3) == 3.0  # clamped, not 4.0
        assert policy.backoff_delay(10) == 3.0

    def test_jittered_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter=1.0, seed=5)
        delays = [policy.backoff_delay(1, slot) for slot in range(8)]
        replays = [policy.backoff_delay(1, slot) for slot in range(8)]
        assert delays == replays
        assert all(0.5 <= delay <= 1.5 for delay in delays)
        assert len(set(delays)) > 1  # jitter actually varies per slot

    def test_seeded_jitter_replays_and_varies(self):
        draws = {(s, a): seeded_jitter(s, a) for s in range(3)
                 for a in range(1, 4)}
        for (s, a), value in draws.items():
            assert value == seeded_jitter(s, a)
            assert 0.0 <= value < 1.0
        assert len(set(draws.values())) == len(draws)


# ---------------------------------------------------------------------- #
# FaultPlan
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_validates_probabilities(self):
        with pytest.raises(ValueError, match="frame_drop_probability"):
            FaultPlan(frame_drop_probability=1.5)
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan(frame_drop_probability=0.6,
                      connection_reset_probability=0.6)

    def test_fault_dataclasses_validate(self):
        with pytest.raises(ValueError, match="unknown frame fault action"):
            FrameFault("explode")
        with pytest.raises(ValueError, match="cycle must be positive"):
            ShardKill(cycle=0, slot=0)
        with pytest.raises(ValueError, match="seconds must be positive"):
            StragglerWave(cycles=(1,), slots=(0,), seconds=0.0)

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key "
                                             "'shard_kills'"):
            FaultPlan.from_spec({"shard_kills": []})

    def test_scheduled_faults_resolve_per_cycle(self):
        plan = FaultPlan.from_spec({
            "shard_kill": [{"cycle": 3, "slot": 1}, {"cycle": 3, "slot": 0}],
            "straggler_wave": [{"cycles": [2, 3], "slots": [1],
                                "seconds": 0.25}],
        })
        assert plan.kills_for_cycle(3) == [0, 1]
        assert plan.kills_for_cycle(2) == []
        assert plan.straggle_seconds(2, 1) == 0.25
        assert plan.straggle_seconds(2, 0) == 0.0
        assert plan.straggle_seconds(4, 1) == 0.0

    def test_frame_fault_stream_replays_identically(self):
        plan = FaultPlan(seed=9, frame_drop_probability=0.3,
                         frame_delay_probability=0.2)
        stream = plan.frame_fault_stream(2, 1)
        first = [stream() for _ in range(32)]
        replay_stream = plan.frame_fault_stream(2, 1)
        second = [replay_stream() for _ in range(32)]
        assert first == second
        assert any(fault is not None for fault in first)
        # Distinct (cycle, slot) keys draw from independent streams.
        other_stream = plan.frame_fault_stream(2, 0)
        other = [other_stream() for _ in range(32)]
        assert other != first

    def test_streams_are_order_independent(self):
        """Creating/consuming slot streams in any order gives the same
        per-slot decisions (no shared global RNG)."""
        plan = FaultPlan(seed=4, connection_reset_probability=0.5)
        forward = {slot: plan.frame_fault_stream(1, slot)()
                   for slot in range(6)}
        backward = {slot: plan.frame_fault_stream(1, slot)()
                    for slot in reversed(range(6))}
        assert forward == backward
        assert any(fault is not None for fault in forward.values())


# ---------------------------------------------------------------------- #
# ChaosController against live backends
# ---------------------------------------------------------------------- #
def _serial_histories(cycles, seed=0):
    sim = make_tiny_simulation(seed=seed)
    from repro.baselines import SynchronousFLStrategy
    history = sim.run(SynchronousFLStrategy(), num_cycles=cycles)
    sim.close()
    return history


def _run_with_chaos(backend_name, plan, cycles, seed=0, **backend_kwargs):
    from repro.baselines import SynchronousFLStrategy

    class _ChaosCycles(SynchronousFLStrategy):
        def __init__(self, controller):
            super().__init__()
            self._controller = controller

        def execute_cycle(self, cycle, sim):
            self._controller.begin_cycle(cycle)
            return super().execute_cycle(cycle, sim)

    sim = make_tiny_simulation(seed=seed)
    backend = sim.set_backend(backend_name, **backend_kwargs)
    controller = ChaosController(plan)
    backend.attach_chaos(controller)
    try:
        history = sim.run(_ChaosCycles(controller), num_cycles=cycles)
    finally:
        sim.close()
    return history, controller.events


class TestChaosInjection:
    def test_serial_backend_refuses_chaos(self):
        backend = make_backend("serial")
        with pytest.raises(RuntimeError, match="does not support fault "
                                               "injection"):
            backend.attach_chaos(ChaosController(FaultPlan()))

    @pytest.mark.parametrize("backend_name", ["persistent", "sharded"])
    def test_shard_kill_rebalance_matches_serial(self, backend_name):
        """Tier-1 determinism gate: a kill at cycle 2 under rebalance
        yields a history bit-identical to the undisturbed serial run."""
        plan = FaultPlan(seed=3, shard_kills=(ShardKill(cycle=2, slot=0),))
        history, events = _run_with_chaos(
            backend_name, plan, cycles=3, max_workers=2,
            on_shard_failure="rebalance")
        reference = _serial_histories(cycles=3)
        assert [e["event"] for e in events] == ["shard_kill"]
        assert events[0] == {"cycle": 2, "event": "shard_kill", "slot": 0}
        for ours, theirs in zip(history.records, reference.records):
            assert ours.global_accuracy == theirs.global_accuracy
            assert ours.mean_train_loss == theirs.mean_train_loss
            assert ours.dropped_clients == ()

    @pytest.mark.parametrize("backend_name", ["persistent", "sharded"])
    def test_shard_kill_degrade_records_dropped_clients(self, backend_name):
        """Under degrade the dead shard's clients are dropped from the
        cycle, recorded in the history, and training continues over the
        survivors (re-weighted aggregation, replayable)."""
        plan = FaultPlan(seed=3, shard_kills=(ShardKill(cycle=2, slot=0),))
        history, events = _run_with_chaos(
            backend_name, plan, cycles=3, max_workers=2,
            on_shard_failure="degrade")
        replay, replay_events = _run_with_chaos(
            backend_name, plan, cycles=3, max_workers=2,
            on_shard_failure="degrade")
        assert events == replay_events
        wounded = history.records[1]
        assert wounded.cycle == 2
        assert wounded.dropped_clients  # somebody was dropped
        assert wounded.participating_clients == \
            3 - len(wounded.dropped_clients)
        # Degraded aggregation diverges from the full-fleet run...
        reference = _serial_histories(cycles=3)
        assert wounded.global_accuracy != \
            reference.records[1].global_accuracy or \
            wounded.mean_train_loss != reference.records[1].mean_train_loss
        # ...but replays exactly.
        for ours, again in zip(history.records, replay.records):
            assert ours.global_accuracy == again.global_accuracy
            assert ours.dropped_clients == again.dropped_clients
        # Cycles before/after the kill run the full fleet.
        assert history.records[0].dropped_clients == ()
        assert history.records[2].dropped_clients == ()

    def test_straggler_wave_slows_but_preserves_results(self):
        plan = FaultPlan(straggler_waves=(
            StragglerWave(cycles=(1,), slots=(0, 1), seconds=0.05),))
        history, events = _run_with_chaos(
            "persistent", plan, cycles=2, max_workers=2)
        reference = _serial_histories(cycles=2)
        straggles = [e for e in events if e["event"] == "straggle"]
        assert {e["slot"] for e in straggles} == {0, 1}
        assert all(e["cycle"] == 1 for e in straggles)
        assert len(straggles) == 2  # recorded once per (cycle, slot)
        for ours, theirs in zip(history.records, reference.records):
            assert ours.global_accuracy == theirs.global_accuracy

    def test_frame_faults_recover_bit_identically(self):
        plan = FaultPlan(seed=1, frame_drop_probability=0.3,
                         connection_reset_probability=0.15)
        history, events = _run_with_chaos(
            "sharded", plan, cycles=2, max_workers=2,
            on_shard_failure="rebalance",
            retry_policy={"max_attempts": 10, "backoff_base_s": 0.01,
                          "backoff_max_s": 0.05})
        reference = _serial_histories(cycles=2)
        assert any(e["event"].startswith("frame_") for e in events)
        for ours, theirs in zip(history.records, reference.records):
            assert ours.global_accuracy == theirs.global_accuracy
            assert ours.mean_train_loss == theirs.mean_train_loss


# ---------------------------------------------------------------------- #
# Retry substrate regressions
# ---------------------------------------------------------------------- #
def _train_twice_serial(seed=0):
    sim = make_tiny_simulation(seed=seed)
    sim.train_clients(sim.client_indices())
    second = sim.train_clients(sim.client_indices())
    sim.close()
    return second


def _assert_updates_equal(expected_updates, actual_updates):
    assert len(expected_updates) == len(actual_updates)
    for expected, actual in zip(expected_updates, actual_updates):
        assert expected.client_id == actual.client_id
        assert expected.train_loss == actual.train_loss
        for key in expected.weights:
            np.testing.assert_array_equal(expected.weights[key],
                                          actual.weights[key])


class TestRetrySubstrate:
    def test_heartbeat_probe_failover_with_delta_shipping(self):
        """Probe-triggered rebalance must reset the respawned shard's
        delta base: the next dispatch ships full snapshots and the
        updates stay bit-identical to serial."""
        serial_second = _train_twice_serial()
        backend = ShardedSocketBackend(shards=2, on_failure="rebalance",
                                       heartbeat_interval=0.0,
                                       delta_shipping=True)
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())  # deltas established
            proc = backend._procs[0]
            proc.kill()
            proc.wait(timeout=10)
            # The pre-dispatch health probe sees the corpse, rebalances,
            # and the fresh shard (empty delta base) gets full snapshots.
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        _assert_updates_equal(serial_second, second)

    def test_double_shard_kill_same_batch_rebalances(self):
        """Regression: both shards SIGKILLed between batches recover
        under rebalance within the policy's attempt cap."""
        serial_second = _train_twice_serial()
        backend = ShardedSocketBackend(shards=2, on_failure="rebalance")
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            for slot in (0, 1):
                proc = backend._procs[slot]
                proc.kill()
                proc.wait(timeout=10)
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        _assert_updates_equal(serial_second, second)

    def test_breaker_declares_flapping_shard_dead(self):
        """With breaker_threshold=1 a single strike retires the slot:
        its clients migrate and the slot never hosts work again."""
        backend = PersistentProcessBackend(
            max_workers=2, on_failure="rebalance",
            retry_policy=RetryPolicy(breaker_threshold=1))
        sim = make_tiny_simulation()
        sim.set_backend(backend)
        try:
            sim.train_clients(sim.client_indices())
            worker = backend._workers[0]
            worker.process.kill()
            worker.process.join(timeout=10)
            sim.train_clients(sim.client_indices())
            assert 0 in backend._dead_slots
            assert all(slot != 0
                       for slot in backend._placement.values())
        finally:
            sim.close()

    def test_backend_knobs_reject_bad_values(self):
        with pytest.raises(ValueError, match="connect_timeout must be "
                                             "positive"):
            make_backend("sharded", connect_timeout=0.0)
        with pytest.raises(ValueError, match="retry_policy must be a "
                                             "RetryPolicy"):
            PersistentProcessBackend(retry_policy="aggressive")
        with pytest.raises(ValueError, match="retry_policy only applies"):
            make_backend("serial", retry_policy={"max_attempts": 2})
        with pytest.raises(ValueError, match="connect_timeout only "
                                             "applies"):
            make_backend("persistent", connect_timeout=5.0)

    def test_reconnect_attempts_drive_external_strikes(self):
        backend = ShardedSocketBackend(
            shards=2, retry_policy=RetryPolicy(reconnect_attempts=3))
        try:
            assert backend.EXTERNAL_SHARD_STRIKES == 4
        finally:
            backend.close()
