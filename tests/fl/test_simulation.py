"""Tests for the federated simulation engine."""

import numpy as np
import pytest

from repro.fl import CycleOutcome, FederatedStrategy
from repro.nn import ModelMask

from ..conftest import make_tiny_simulation


class RecordingStrategy(FederatedStrategy):
    """Minimal strategy: everyone trains fully, FedAvg, fixed duration."""

    name = "recording"

    def __init__(self, duration=2.0):
        self.duration = duration
        self.setup_called = False
        self.cycles_run = []

    def setup(self, sim):
        self.setup_called = True

    def execute_cycle(self, cycle, sim):
        self.cycles_run.append(cycle)
        updates = [sim.train_client(index)
                   for index in sim.client_indices()]
        sim.server.aggregate(updates, partial=False)
        return CycleOutcome(duration_s=self.duration,
                            participating_clients=len(updates),
                            mean_train_loss=float(np.mean(
                                [update.train_loss for update in updates])))


class TestTimingServices:
    def test_straggler_cycle_is_longer(self, tiny_simulation):
        fast = tiny_simulation.client_cycle_seconds(0)
        slow = tiny_simulation.client_cycle_seconds(2)
        assert slow > fast

    def test_mask_reduces_cycle_time(self, tiny_simulation):
        model = tiny_simulation.server.global_model
        mask = ModelMask.random(model, {"fc1": 0.25, "fc2": 0.25,
                                        "output": 0.25},
                                np.random.default_rng(0))
        full = tiny_simulation.client_cycle_seconds(2)
        shrunk = tiny_simulation.client_cycle_seconds(2, mask=mask)
        assert shrunk < full

    def test_more_epochs_take_longer(self, tiny_simulation):
        one = tiny_simulation.client_cycle_seconds(2, local_epochs=1)
        three = tiny_simulation.client_cycle_seconds(2, local_epochs=3)
        assert three > one

    def test_communication_toggle(self, tiny_simulation):
        with_comm = tiny_simulation.client_cycle_seconds(0)
        without = tiny_simulation.client_cycle_seconds(
            0, include_communication=False)
        assert with_comm > without

    def test_slowest_and_fastest_cycles(self, tiny_simulation):
        assert (tiny_simulation.slowest_full_cycle_seconds()
                > tiny_simulation.fastest_full_cycle_seconds())

    def test_workload_scale_scales_time(self):
        small = make_tiny_simulation()
        large = make_tiny_simulation()
        large.workload_scale = small.workload_scale * 10
        assert (large.client_cycle_seconds(2, include_communication=False)
                > small.client_cycle_seconds(2, include_communication=False))

    def test_invalid_workload_scale(self):
        with pytest.raises(ValueError):
            sim = make_tiny_simulation()
            from repro.fl import FederatedSimulation
            FederatedSimulation(sim.clients, sim.server, (1, 8, 8),
                                workload_scale=0.0)


class TestNumericalServices:
    def test_train_client_defaults_to_global_weights(self, tiny_simulation):
        update = tiny_simulation.train_client(0)
        assert set(update.weights) == set(
            tiny_simulation.server.get_global_weights())

    def test_evaluate_global_in_range(self, tiny_simulation):
        accuracy = tiny_simulation.evaluate_global()
        assert 0.0 <= accuracy <= 1.0

    def test_add_client_returns_new_index(self, tiny_simulation):
        from repro.fl import FLClient, ClientConfig
        from ..conftest import SLOW_DEVICE, make_tiny_dataset, make_tiny_model
        client = FLClient(client_id=3, dataset=make_tiny_dataset(30, seed=9),
                          device=SLOW_DEVICE, model_factory=make_tiny_model,
                          config=ClientConfig(batch_size=10))
        index = tiny_simulation.add_client(client)
        assert index == 3
        assert tiny_simulation.num_clients() == 4

    def test_set_backend_passes_failure_policy_through(self, tiny_simulation):
        """The fault-tolerance surface reaches the constructed backend."""
        backend = tiny_simulation.set_backend(
            "persistent", max_workers=1, on_shard_failure="rebalance")
        assert backend.on_failure == "rebalance"
        backend = tiny_simulation.set_backend(
            "sharded", max_workers=1, on_shard_failure="rebalance",
            heartbeat_interval=30.0)
        assert backend.on_failure == "rebalance"
        assert backend.heartbeat_interval == 30.0
        tiny_simulation.close()

    def test_set_backend_rejects_policy_on_instance(self, tiny_simulation):
        from repro.fl import SerialBackend
        with pytest.raises(ValueError, match="already-constructed"):
            tiny_simulation.set_backend(SerialBackend(),
                                        on_shard_failure="rebalance")


class TestRunLoop:
    def test_runs_requested_cycles(self, tiny_simulation):
        strategy = RecordingStrategy()
        history = tiny_simulation.run(strategy, num_cycles=3)
        assert strategy.setup_called
        assert strategy.cycles_run == [1, 2, 3]
        assert len(history) == 3

    def test_clock_advances_by_durations(self, tiny_simulation):
        history = tiny_simulation.run(RecordingStrategy(duration=5.0),
                                      num_cycles=4)
        np.testing.assert_allclose(history.times_s(), [5.0, 10.0, 15.0, 20.0])

    def test_eval_every_skips_evaluations(self, tiny_simulation):
        history = tiny_simulation.run(RecordingStrategy(), num_cycles=4,
                                      eval_every=2)
        # Cycles 1 and 3 reuse the previous accuracy, 2 and 4 evaluate.
        assert history.accuracies()[0] == 0.0
        assert len(history) == 4

    def test_target_accuracy_stops_early(self, tiny_simulation):
        history = tiny_simulation.run(RecordingStrategy(), num_cycles=50,
                                      target_accuracy=0.01)
        assert len(history) < 50

    def test_accuracy_improves_over_cycles(self, tiny_simulation):
        history = tiny_simulation.run(RecordingStrategy(), num_cycles=6)
        assert history.final_accuracy() > 0.4

    def test_invalid_run_arguments(self, tiny_simulation):
        with pytest.raises(ValueError):
            tiny_simulation.run(RecordingStrategy(), num_cycles=0)
        with pytest.raises(ValueError):
            tiny_simulation.run(RecordingStrategy(), num_cycles=2,
                                eval_every=0)

    def test_history_strategy_name(self, tiny_simulation):
        history = tiny_simulation.run(RecordingStrategy(), num_cycles=1)
        assert history.strategy_name == "recording"


class TestTrainClientsBatch:
    """Batch-API semantics of :meth:`FederatedSimulation.train_clients`."""

    def test_batch_matches_serial_single_calls(self):
        batch_sim = make_tiny_simulation()
        loop_sim = make_tiny_simulation()
        batch_updates = batch_sim.train_clients(batch_sim.client_indices())
        loop_updates = [loop_sim.train_client(index)
                        for index in loop_sim.client_indices()]
        for batched, looped in zip(batch_updates, loop_updates):
            assert batched.client_id == looped.client_id
            assert batched.train_loss == looped.train_loss
            for name in looped.weights:
                np.testing.assert_array_equal(batched.weights[name],
                                              looped.weights[name])

    def test_result_order_follows_indices(self, tiny_simulation):
        updates = tiny_simulation.train_clients([1, 2, 0])
        assert [update.client_id for update in updates] == [1, 2, 0]

    def test_weights_snapshot_taken_once(self, tiny_simulation):
        """All batch members start from the same global snapshot."""
        updates = tiny_simulation.train_clients([0, 1])
        # Aggregating afterwards must not have been observed mid-batch:
        # both updates trained from identical weights, so their deltas are
        # independent (checked indirectly: training the same client twice
        # from the same snapshot in two batches gives different results
        # only through its RNG, not through a moved snapshot).
        assert len(updates) == 2

    def test_masks_applied_per_client(self, tiny_simulation):
        from repro.nn import ModelMask
        model = tiny_simulation.server.global_model
        mask = ModelMask.random(model, {"fc1": 0.5, "fc2": 0.5,
                                        "output": 0.5},
                                np.random.default_rng(0))
        updates = tiny_simulation.train_clients([0, 1], masks={1: mask})
        assert updates[0].mask is None
        assert updates[1].mask is not None
        assert updates[1].mask.active_fraction() < 1.0

    def test_base_cycle_propagates(self, tiny_simulation):
        updates = tiny_simulation.train_clients([0], base_cycle=7)
        assert updates[0].base_cycle == 7

    def test_local_epochs_override(self, tiny_simulation):
        updates = tiny_simulation.train_clients([0], local_epochs=2)
        assert updates[0].local_epochs == 2


class TestCostCaching:
    """Cycle-cost estimates are cached and invalidated correctly."""

    def test_repeated_queries_hit_cache(self, tiny_simulation):
        first = tiny_simulation.client_cycle_seconds(0)
        assert tiny_simulation._cycle_cost_cache
        assert tiny_simulation.client_cycle_seconds(0) == first

    def test_equal_volume_masks_share_entry(self, tiny_simulation):
        from repro.nn import ModelMask
        model = tiny_simulation.server.global_model
        fractions = {"fc1": 0.5, "fc2": 0.5, "output": 0.5}
        mask_a = ModelMask.random(model, fractions,
                                  np.random.default_rng(1))
        mask_b = ModelMask.random(model, fractions,
                                  np.random.default_rng(2))
        seconds_a = tiny_simulation.client_cycle_seconds(2, mask=mask_a)
        cache_size = len(tiny_simulation._cycle_cost_cache)
        seconds_b = tiny_simulation.client_cycle_seconds(2, mask=mask_b)
        assert seconds_a == seconds_b
        assert len(tiny_simulation._cycle_cost_cache) == cache_size

    def test_invalidate_all(self, tiny_simulation):
        tiny_simulation.client_cycle_seconds(0)
        tiny_simulation.cost_model_for(0)
        tiny_simulation.invalidate_cost_caches()
        assert not tiny_simulation._cycle_cost_cache
        assert not tiny_simulation._cost_models

    def test_workload_scale_change_after_invalidation(self, tiny_simulation):
        before = tiny_simulation.client_cycle_seconds(
            2, include_communication=False)
        tiny_simulation.workload_scale *= 10
        tiny_simulation.invalidate_cost_caches()
        after = tiny_simulation.client_cycle_seconds(
            2, include_communication=False)
        assert after > before

    def test_add_client_gets_fresh_estimates(self, tiny_simulation):
        from repro.fl import ClientConfig, FLClient
        from ..conftest import FAST_DEVICE, make_tiny_dataset, make_tiny_model
        # Warm every cache, including the index the new client will take.
        for index in tiny_simulation.client_indices():
            tiny_simulation.client_cycle_seconds(index)
        straggler_seconds = tiny_simulation.client_cycle_seconds(2)
        fast_client = FLClient(
            client_id=3, dataset=make_tiny_dataset(40, seed=5),
            device=FAST_DEVICE.scaled(name="joiner"),
            model_factory=make_tiny_model,
            config=ClientConfig(batch_size=20))
        new_index = tiny_simulation.add_client(fast_client)
        new_seconds = tiny_simulation.client_cycle_seconds(new_index)
        # The joiner is a fast device: its estimate must reflect its own
        # profile, not any stale cache entry of the straggler fleet.
        assert new_seconds < straggler_seconds
        assert tiny_simulation.cost_model_for(new_index) is not \
            tiny_simulation.cost_model_for(2)

    def test_add_client_drops_stale_entries_for_reused_index(self):
        """A rejoining index never inherits the previous member's costs."""
        sim = make_tiny_simulation()
        from repro.fl import ClientConfig, FLClient
        from ..conftest import SLOW_DEVICE, make_tiny_dataset, make_tiny_model
        slow_client = FLClient(
            client_id=3, dataset=make_tiny_dataset(40, seed=6),
            device=SLOW_DEVICE.scaled(name="slow-joiner"),
            model_factory=make_tiny_model,
            config=ClientConfig(batch_size=20))
        index = sim.add_client(slow_client)
        slow_seconds = sim.client_cycle_seconds(index)
        # Simulate a fleet-management path that replaces the client list
        # and re-adds a *fast* device at the same index.
        sim.clients.pop()
        fast_client = FLClient(
            client_id=3, dataset=make_tiny_dataset(40, seed=6),
            device=sim.client(0).device,
            model_factory=make_tiny_model,
            config=ClientConfig(batch_size=20))
        assert sim.add_client(fast_client) == index
        assert sim.client_cycle_seconds(index) < slow_seconds


class TestCycleOutcomeValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CycleOutcome(duration_s=-1.0, participating_clients=1)

    def test_negative_participants_rejected(self):
        with pytest.raises(ValueError):
            CycleOutcome(duration_s=1.0, participating_clients=-1)

    def test_base_strategy_is_abstract(self, tiny_simulation):
        with pytest.raises(NotImplementedError):
            FederatedStrategy().execute_cycle(1, tiny_simulation)
