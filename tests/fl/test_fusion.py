"""Parity suite for the stacked (fused) multi-client training engine.

The fused path of :mod:`repro.fl.fusion` must be *bit-identical* to
serial :meth:`FLClient.local_train` — same losses, same weights, same
RNG streams — for every configuration it declares itself eligible for,
and must conservatively opt out of everything else.  These tests compare
the two paths directly (no backend in between) and through the
persistent backend with ``fusion="stacked"``.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.fl import ClientConfig, FLClient
from repro.fl.fusion import FUSION_MODES, cluster_signature, train_cluster
from repro.nn import ModelMask
from repro.nn.layers import Dense, Dropout, Flatten, ReLU
from repro.nn.model import Sequential

from ..conftest import (FAST_DEVICE, make_tiny_dataset, make_tiny_model,
                        make_tiny_simulation)

DEFAULT_CONFIG = ClientConfig(batch_size=20, local_epochs=1,
                              learning_rate=0.1)


class _PlainSubclassClient(FLClient):
    """Semantically identical to FLClient, but a distinct type — which
    makes it fusion-ineligible (module-level so specs can pickle it)."""



def make_fleet(num_clients=3, config=DEFAULT_CONFIG, samples=40,
               model_factory=make_tiny_model):
    return [FLClient(client_id=index,
                     dataset=make_tiny_dataset(samples, seed=index),
                     device=FAST_DEVICE.scaled(name=f"fused-{index}"),
                     model_factory=model_factory, config=config,
                     seed=index)
            for index in range(num_clients)]


def make_job(weights_ref=0, mask=None, local_epochs=None, base_cycle=0):
    """A wire-job stand-in (the executor's ``_WireJob`` shape)."""
    return SimpleNamespace(weights_ref=weights_ref, mask=mask,
                           local_epochs=local_epochs, base_cycle=base_cycle)


def group_of(*jobs):
    return SimpleNamespace(jobs=list(jobs))


def assert_updates_identical(expected, actual):
    assert expected.client_id == actual.client_id
    assert expected.train_loss == actual.train_loss
    assert expected.num_samples == actual.num_samples
    assert expected.local_epochs == actual.local_epochs
    assert expected.weights.keys() == actual.weights.keys()
    for key in expected.weights:
        np.testing.assert_array_equal(expected.weights[key],
                                      actual.weights[key])


def assert_parity(config=DEFAULT_CONFIG, masks=None, local_epochs=None,
                  num_clients=3, samples=40):
    """Serial local_train vs train_cluster on identical twin fleets."""
    weights = make_tiny_model().get_weights()
    serial_fleet = make_fleet(num_clients, config, samples)
    fused_fleet = make_fleet(num_clients, config, samples)
    masks = masks or [None] * num_clients
    serial_updates = [
        client.local_train(weights, mask=mask, local_epochs=local_epochs)
        for client, mask in zip(serial_fleet, masks)]
    members = [(client, make_job(mask=mask, local_epochs=local_epochs))
               for client, mask in zip(fused_fleet, masks)]
    signatures = {cluster_signature(client, group_of(job), [weights])
                  for client, job in members}
    assert len(signatures) == 1 and None not in signatures
    fused_updates = train_cluster(members, [weights])
    for expected, actual in zip(serial_updates, fused_updates):
        assert_updates_identical(expected, actual)
    for serial_client, fused_client in zip(serial_fleet, fused_fleet):
        assert (serial_client.rng.bit_generator.state
                == fused_client.rng.bit_generator.state)
        expected = serial_client.model.get_weights()
        actual = fused_client.model.get_weights()
        for key in expected:
            np.testing.assert_array_equal(expected[key], actual[key])


class TestEligibility:
    def _signature(self, client, job=None, weights=None):
        weights_table = [weights if weights is not None
                         else make_tiny_model().get_weights()]
        return cluster_signature(client, group_of(job or make_job()),
                                 weights_table)

    def test_modes_exported(self):
        assert FUSION_MODES == ("off", "stacked")
        from repro.fl import FUSION_MODES as reexported
        assert reexported is FUSION_MODES

    def test_homogeneous_fleet_shares_one_signature(self):
        signatures = {self._signature(client)
                      for client in make_fleet(num_clients=3)}
        assert len(signatures) == 1
        assert None not in signatures

    def test_multi_job_group_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        weights = [make_tiny_model().get_weights()]
        group = group_of(make_job(), make_job())
        assert cluster_signature(client, group, weights) is None

    def test_subclassed_client_is_ineligible(self):
        class TracingClient(FLClient):
            pass

        client = make_fleet(num_clients=1)[0]
        traced = TracingClient(client_id=9, dataset=client.dataset,
                               device=client.device,
                               model_factory=make_tiny_model,
                               config=DEFAULT_CONFIG, seed=9)
        assert self._signature(traced) is None

    def test_unmodelled_layer_is_ineligible(self):
        def dropout_model(seed=7):
            generator = np.random.default_rng(seed)
            return Sequential([
                Flatten(name="flatten"),
                Dense(64, 8, rng=generator, name="fc1"),
                ReLU(name="relu1"),
                Dropout(0.5, name="drop"),
                Dense(8, 4, rng=generator, name="output"),
            ], name="dropout-mlp")

        client = make_fleet(num_clients=1,
                            model_factory=dropout_model)[0]
        assert cluster_signature(client, group_of(make_job()),
                                 [dropout_model().get_weights()]) is None

    def test_missing_snapshot_parameter_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        weights = make_tiny_model().get_weights()
        weights.pop("fc1/weight")
        assert self._signature(client, weights=weights) is None

    def test_fortran_order_snapshot_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        weights = make_tiny_model().get_weights()
        weights["fc1/weight"] = np.asfortranarray(weights["fc1/weight"])
        assert self._signature(client, weights=weights) is None

    def test_unknown_mask_layer_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        mask = ModelMask({"no-such-layer": np.ones(16, dtype=bool)})
        assert self._signature(client, job=make_job(mask=mask)) is None

    def test_wrong_mask_shape_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        mask = ModelMask({"fc1": np.ones(7, dtype=bool)})
        assert self._signature(client, job=make_job(mask=mask)) is None

    def test_bad_weights_ref_is_ineligible(self):
        client = make_fleet(num_clients=1)[0]
        assert self._signature(client, job=make_job(weights_ref=5)) is None

    def test_epoch_override_changes_signature(self):
        client = make_fleet(num_clients=1)[0]
        plain = self._signature(client)
        overridden = self._signature(client, job=make_job(local_epochs=3))
        assert plain is not None and overridden is not None
        assert plain != overridden


class TestStackedParity:
    def test_default_config(self):
        assert_parity()

    def test_single_client_cluster(self):
        assert_parity(num_clients=1)

    def test_multi_epoch(self):
        assert_parity(config=ClientConfig(batch_size=20, local_epochs=3,
                                          learning_rate=0.1))

    def test_non_divisible_batch_size(self):
        # 40 samples, batches of 12 → a ragged final batch of 4.
        assert_parity(config=ClientConfig(batch_size=12, local_epochs=1,
                                          learning_rate=0.1))

    def test_multi_epoch_and_non_divisible_batches(self):
        assert_parity(config=ClientConfig(batch_size=12, local_epochs=2,
                                          learning_rate=0.1))

    def test_batch_size_larger_than_dataset(self):
        assert_parity(config=ClientConfig(batch_size=64, local_epochs=2,
                                          learning_rate=0.1))

    def test_epoch_override_via_job(self):
        assert_parity(local_epochs=3)

    def test_momentum(self):
        assert_parity(config=ClientConfig(batch_size=20, local_epochs=2,
                                          learning_rate=0.1, momentum=0.9))

    def test_weight_decay(self):
        assert_parity(config=ClientConfig(batch_size=20, local_epochs=2,
                                          learning_rate=0.1,
                                          weight_decay=0.01))

    def test_heterogeneous_masks(self):
        rng = np.random.default_rng(11)
        model = make_tiny_model()
        masks = [ModelMask.random(model, {"fc1": 0.5, "fc2": 0.75}, rng),
                 None,
                 ModelMask.random(model, {"fc1": 0.25}, rng)]
        assert_parity(masks=masks)

    def test_masks_with_momentum_and_ragged_batches(self):
        rng = np.random.default_rng(5)
        model = make_tiny_model()
        masks = [ModelMask.random(model, {"fc1": 0.5}, rng), None, None]
        assert_parity(config=ClientConfig(batch_size=12, local_epochs=2,
                                          learning_rate=0.1, momentum=0.9),
                      masks=masks)


class TestFusedBackendParity:
    """End-to-end: fused and unfused backend runs are bit-identical."""

    @staticmethod
    def _history(fusion, config):
        sim = make_tiny_simulation(num_capable=4, num_stragglers=2)
        for index in sim.client_indices():
            sim.client(index).config = config
        if fusion is not None:
            sim.set_backend("persistent", max_workers=2, fusion=fusion)
        losses = []
        try:
            for _ in range(3):
                updates = sim.train_clients(sim.client_indices())
                losses.extend(update.train_loss for update in updates)
            weights = [client.model.get_weights()
                       for client in sim.clients]
            rng_states = [client.rng.bit_generator.state["state"]
                          for client in sim.clients]
        finally:
            sim.close()
        return losses, weights, rng_states

    @pytest.mark.parametrize("config", [
        ClientConfig(batch_size=20, local_epochs=1, learning_rate=0.1),
        # The satellite case: multi-epoch with a ragged final batch.
        ClientConfig(batch_size=12, local_epochs=2, learning_rate=0.1),
    ], ids=["even-batches", "multi-epoch-ragged"])
    def test_fused_unfused_and_serial_histories_identical(self, config):
        serial = self._history(None, config)
        unfused = self._history("off", config)
        fused = self._history("stacked", config)
        for actual in (unfused, fused):
            assert actual[0] == serial[0]
            assert actual[2] == serial[2]
            for expected, got in zip(serial[1], actual[1]):
                for key in expected:
                    np.testing.assert_array_equal(expected[key], got[key])

    def test_mixed_fleet_matches_serial(self):
        """Ineligible clients fall back to the classic loop in place."""

        def run(fused):
            sim = make_tiny_simulation(num_capable=3, num_stragglers=1)
            # A subclass opts out of fusion (its training loop could be
            # overridden); it must train classically inside the same
            # batch as its fused peers.
            sim.add_client(_PlainSubclassClient(
                client_id=sim.num_clients(),
                dataset=make_tiny_dataset(40, seed=77),
                device=FAST_DEVICE.scaled(name="odd-one-out"),
                model_factory=make_tiny_model,
                config=ClientConfig(batch_size=20, learning_rate=0.1)))
            if fused:
                sim.set_backend("persistent", max_workers=2,
                                fusion="stacked")
            try:
                updates = sim.train_clients(sim.client_indices())
                return ([update.train_loss for update in updates],
                        [client.model.get_weights()
                         for client in sim.clients])
            finally:
                sim.close()

        serial_losses, serial_weights = run(fused=False)
        fused_losses, fused_weights = run(fused=True)
        assert fused_losses == serial_losses
        for expected, got in zip(serial_weights, fused_weights):
            for key in expected:
                np.testing.assert_array_equal(expected[key], got[key])
