"""Tests for the execution-backend subsystem (:mod:`repro.fl.executor`).

The contract under test: every backend returns updates in job order, the
pooled backends reproduce the serial backend bit-for-bit under a fixed
seed, and a crashed worker surfaces its exception to the caller.
"""

import numpy as np
import pytest

from repro.baselines import SynchronousFLStrategy
from repro.core import HeliosConfig, HeliosStrategy
from repro.core.straggler import StragglerIdentifier
from repro.fl import (ExecutionBackend, ProcessPoolBackend, SerialBackend,
                      ThreadPoolBackend, TrainingJob, available_backends,
                      make_backend)

from ..conftest import (FAST_DEVICE, SLOW_DEVICE, make_tiny_model,
                        make_tiny_simulation)

BACKENDS = ("serial", "thread", "process")


def _run_collaboration(backend_name, strategy_factory, num_cycles=3):
    """History + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    sim.set_backend(backend_name, max_workers=2)
    try:
        history = sim.run(strategy_factory(), num_cycles=num_cycles)
        weights = sim.server.get_global_weights()
    finally:
        sim.backend.close()
    return history, weights


class TestBackendFactory:
    def test_available_backends(self):
        assert set(available_backends()) == {"serial", "thread", "process"}

    def test_none_means_serial(self):
        assert isinstance(make_backend(None), SerialBackend)

    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialBackend),
        ("thread", ThreadPoolBackend),
        ("process", ProcessPoolBackend),
    ])
    def test_by_name(self, name, cls):
        backend = make_backend(name)
        assert isinstance(backend, cls)
        backend.close()

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu-cluster")

    def test_bad_spec_type_rejected(self):
        with pytest.raises(TypeError):
            make_backend(42)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)

    def test_context_manager_closes(self):
        with ThreadPoolBackend(max_workers=1) as backend:
            assert backend.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]
        assert backend._pool is None


class TestOrdering:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_updates_come_back_in_job_order(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            updates = sim.train_clients([2, 0, 1])
        finally:
            sim.backend.close()
        assert [update.client_id for update in updates] == [2, 0, 1]

    @pytest.mark.parametrize("backend_name", ("thread", "process"))
    def test_duplicate_client_jobs_match_serial(self, backend_name):
        """Jobs of one client chain sequentially (RNG order preserved)."""
        def double_train(name):
            sim = make_tiny_simulation()
            sim.set_backend(name, max_workers=2)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=0, weights=weights),
                    TrainingJob(index=0, weights=weights),
                    TrainingJob(index=1, weights=weights)]
            try:
                return sim.run_jobs(jobs)
            finally:
                sim.backend.close()

        serial = double_train("serial")
        concurrent = double_train(backend_name)
        for expected, actual in zip(serial, concurrent):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_unknown_index_fails_fast(self, tiny_simulation):
        with pytest.raises(IndexError):
            tiny_simulation.train_clients([0, 99])

    def test_empty_batch_is_noop(self, tiny_simulation):
        assert tiny_simulation.run_jobs([]) == []


class TestEquivalence:
    """Thread/process histories are bit-identical to serial ones."""

    @pytest.mark.parametrize("backend_name", ("thread", "process"))
    def test_sync_fl_history_bit_identical(self, backend_name):
        reference_history, reference_weights = _run_collaboration(
            "serial", lambda: SynchronousFLStrategy(straggler_top_k=1))
        history, weights = _run_collaboration(
            backend_name, lambda: SynchronousFLStrategy(straggler_top_k=1))
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        assert ([record.mean_train_loss for record in history.records]
                == [record.mean_train_loss
                    for record in reference_history.records])
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    @pytest.mark.parametrize("backend_name", ("thread", "process"))
    def test_helios_history_bit_identical(self, backend_name):
        """Masked soft-training (RNG-heavy path) is backend-invariant."""
        factory = lambda: HeliosStrategy(HeliosConfig(straggler_top_k=1))
        reference_history, reference_weights = _run_collaboration(
            "serial", factory)
        history, weights = _run_collaboration(backend_name, factory)
        assert history.accuracies() == reference_history.accuracies()
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    def test_client_state_advances_identically(self):
        """Post-batch client RNG/model state matches a serial run."""
        def state_after_two_batches(backend_name):
            sim = make_tiny_simulation()
            sim.set_backend(backend_name, max_workers=2)
            try:
                sim.train_clients(sim.client_indices())
                updates = sim.train_clients(sim.client_indices())
            finally:
                sim.backend.close()
            rng_states = [client.rng.bit_generator.state["state"]
                          for client in sim.clients]
            return updates, rng_states

        serial_updates, serial_rng = state_after_two_batches("serial")
        for backend_name in ("thread", "process"):
            updates, rng_states = state_after_two_batches(backend_name)
            assert rng_states == serial_rng
            for expected, actual in zip(serial_updates, updates):
                assert expected.train_loss == actual.train_loss


class TestFailurePaths:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_crashed_worker_surfaces_exception(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        jobs = [TrainingJob(index=0, weights=sim.server.get_global_weights(),
                            local_epochs=0)]  # invalid: crashes the worker
        try:
            with pytest.raises(ValueError, match="local_epochs"):
                sim.run_jobs(jobs)
        finally:
            sim.backend.close()

    @pytest.mark.parametrize("backend_name", ("thread", "process"))
    def test_partial_batch_failure_fails_whole_batch(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=0, weights=weights),
                TrainingJob(index=1, weights=weights, local_epochs=0),
                TrainingJob(index=2, weights=weights)]
        try:
            with pytest.raises(ValueError):
                sim.run_jobs(jobs)
        finally:
            sim.backend.close()


class TestMapOrdered:
    def test_serial_map(self):
        assert SerialBackend().map_ordered(str, [1, 2, 3]) == ["1", "2", "3"]

    def test_thread_map_preserves_order(self):
        with ThreadPoolBackend(max_workers=3) as backend:
            assert backend.map_ordered(lambda x: x * x,
                                       list(range(10))) == \
                [x * x for x in range(10)]

    def test_straggler_identification_with_backend(self):
        """Fleet profiling fans out over a backend's map_ordered."""
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=1000)
        devices = [FAST_DEVICE, FAST_DEVICE.scaled(name="fast-2"),
                   SLOW_DEVICE]
        serial_report = identifier.identify_by_resources(devices)
        with ThreadPoolBackend(max_workers=2) as backend:
            pooled_report = identifier.identify_by_resources(
                devices, backend=backend)
        assert pooled_report.cycle_seconds == serial_report.cycle_seconds
        assert (pooled_report.straggler_indices
                == serial_report.straggler_indices)


class TestSimulationBackendSelection:
    def test_default_backend_is_serial(self, tiny_simulation):
        assert isinstance(tiny_simulation.backend, SerialBackend)

    def test_backend_by_name_at_construction(self):
        from repro.fl import FederatedSimulation
        base = make_tiny_simulation()
        sim = FederatedSimulation(base.clients, base.server, (1, 8, 8),
                                  backend="thread")
        try:
            assert isinstance(sim.backend, ThreadPoolBackend)
        finally:
            sim.backend.close()

    def test_set_backend_closes_previous(self):
        sim = make_tiny_simulation()
        first = sim.set_backend("thread", max_workers=1)
        first.map_ordered(lambda x: x, [1])  # force pool creation
        second = sim.set_backend("serial")
        assert first._pool is None  # closed by the swap
        assert isinstance(second, SerialBackend)
        assert sim.backend is second
