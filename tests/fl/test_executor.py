"""Tests for the execution-backend subsystem (:mod:`repro.fl.executor`).

The contract under test: every backend returns updates in job order, the
pooled backends reproduce the serial backend bit-for-bit under a fixed
seed, and a crashed worker surfaces its exception to the caller.
"""

import numpy as np
import pytest

from repro.baselines import SynchronousFLStrategy
from repro.core import HeliosConfig, HeliosStrategy
from repro.core.straggler import StragglerIdentifier
from repro.fl import (ExecutionBackend, PersistentProcessBackend,
                      ProcessPoolBackend, SerialBackend,
                      ShardedSocketBackend, ThreadPoolBackend, TrainingJob,
                      available_backends, make_backend)

from ..conftest import (FAST_DEVICE, SLOW_DEVICE, make_tiny_model,
                        make_tiny_simulation)

BACKENDS = ("serial", "thread", "process", "persistent", "sharded")
CONCURRENT_BACKENDS = ("thread", "process", "persistent", "sharded")
#: Backends keeping worker-resident client replicas (spec shipped once).
RESIDENT_BACKENDS = ("persistent", "sharded")


def _square(value):
    """Module-level map function (picklable for the process backends)."""
    return value * value


def _reciprocal(value):
    """Module-level map function that raises on zero."""
    return 1.0 / value


def _run_collaboration(backend_name, strategy_factory, num_cycles=3):
    """History + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    sim.set_backend(backend_name, max_workers=2)
    try:
        history = sim.run(strategy_factory(), num_cycles=num_cycles)
        weights = sim.server.get_global_weights()
    finally:
        sim.backend.close()
    return history, weights


class TestBackendFactory:
    def test_available_backends(self):
        assert set(available_backends()) == {"serial", "thread", "process",
                                             "persistent", "sharded"}

    def test_none_means_serial(self):
        assert isinstance(make_backend(None), SerialBackend)

    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialBackend),
        ("thread", ThreadPoolBackend),
        ("process", ProcessPoolBackend),
        ("persistent", PersistentProcessBackend),
        ("sharded", ShardedSocketBackend),
    ])
    def test_by_name(self, name, cls):
        backend = make_backend(name)
        assert isinstance(backend, cls)
        backend.close()

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_instance_with_max_workers_rejected(self):
        """max_workers cannot retrofit an already-built pool instance."""
        backend = ThreadPoolBackend(max_workers=2)
        try:
            with pytest.raises(ValueError, match="max_workers"):
                make_backend(backend, max_workers=4)
        finally:
            backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu-cluster")

    def test_bad_spec_type_rejected(self):
        with pytest.raises(TypeError):
            make_backend(42)

    @pytest.mark.parametrize("cls", [ThreadPoolBackend, ProcessPoolBackend,
                                     PersistentProcessBackend,
                                     ShardedSocketBackend])
    def test_invalid_worker_count_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(max_workers=0)

    def test_sharded_rejects_empty_and_malformed_addresses(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedSocketBackend(shards=[])
        with pytest.raises(ValueError, match="host:port"):
            ShardedSocketBackend(shards=["nonsense"])
        with pytest.raises(ValueError, match="non-integer"):
            ShardedSocketBackend(shards=["localhost:http"])

    def test_sharded_rejects_addresses_plus_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ShardedSocketBackend(shards=["localhost:1"], max_workers=2)

    def test_shards_only_apply_to_sharded_backend(self):
        with pytest.raises(ValueError, match="only applies"):
            make_backend("persistent", shards="localhost:1")
        backend = SerialBackend()
        with pytest.raises(ValueError, match="already-constructed"):
            make_backend(backend, shards="localhost:1")

    def test_default_spec_with_max_workers_rejected(self):
        """Regression: make_backend(None, max_workers=4) silently built a
        SerialBackend and dropped the worker count."""
        with pytest.raises(ValueError, match="max_workers"):
            make_backend(None, max_workers=4)

    def test_failure_policy_constructed(self):
        for name in ("sharded", "persistent"):
            backend = make_backend(name, on_shard_failure="rebalance")
            assert backend.on_failure == "rebalance"
            backend.close()
        default = make_backend("sharded")
        assert default.on_failure == "abort"
        default.close()

    def test_unknown_failure_policy_rejected(self):
        with pytest.raises(ValueError, match="failure policy"):
            make_backend("sharded", on_shard_failure="retry-forever")
        with pytest.raises(ValueError, match="failure policy"):
            PersistentProcessBackend(on_failure="retry-forever")

    def test_failure_policy_only_for_resident_backends(self):
        for spec in (None, "serial", "thread", "process"):
            with pytest.raises(ValueError, match="worker-resident"):
                make_backend(spec, on_shard_failure="rebalance")
        backend = SerialBackend()
        with pytest.raises(ValueError, match="already-constructed"):
            make_backend(backend, on_shard_failure="rebalance")

    def test_heartbeat_only_for_sharded_backend(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            make_backend("persistent", heartbeat_interval=5.0)
        backend = make_backend("sharded", heartbeat_interval=5.0)
        assert backend.heartbeat_interval == 5.0
        backend.close()

    def test_invalid_heartbeat_values_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ShardedSocketBackend(heartbeat_interval=-1.0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ShardedSocketBackend(heartbeat_timeout=0)

    def test_context_manager_closes(self):
        with ThreadPoolBackend(max_workers=1) as backend:
            assert backend.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]
        assert backend._pool is None

    def test_persistent_context_manager_closes(self):
        with PersistentProcessBackend(max_workers=1) as backend:
            assert backend.map_ordered(_square, [1, 2]) == [1, 4]
            assert backend._workers
        assert not backend._workers


class TestOrdering:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_updates_come_back_in_job_order(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            updates = sim.train_clients([2, 0, 1])
        finally:
            sim.backend.close()
        assert [update.client_id for update in updates] == [2, 0, 1]

    @pytest.mark.parametrize("backend_name", CONCURRENT_BACKENDS)
    def test_duplicate_client_jobs_match_serial(self, backend_name):
        """Jobs of one client chain sequentially (RNG order preserved)."""
        def double_train(name):
            sim = make_tiny_simulation()
            sim.set_backend(name, max_workers=2)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=0, weights=weights),
                    TrainingJob(index=0, weights=weights),
                    TrainingJob(index=1, weights=weights)]
            try:
                return sim.run_jobs(jobs)
            finally:
                sim.backend.close()

        serial = double_train("serial")
        concurrent = double_train(backend_name)
        for expected, actual in zip(serial, concurrent):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_unknown_index_fails_fast(self, tiny_simulation):
        with pytest.raises(IndexError):
            tiny_simulation.train_clients([0, 99])

    def test_empty_batch_is_noop(self, tiny_simulation):
        assert tiny_simulation.run_jobs([]) == []


class TestEquivalence:
    """Thread/process histories are bit-identical to serial ones."""

    @pytest.mark.parametrize("backend_name", CONCURRENT_BACKENDS)
    def test_sync_fl_history_bit_identical(self, backend_name):
        reference_history, reference_weights = _run_collaboration(
            "serial", lambda: SynchronousFLStrategy(straggler_top_k=1))
        history, weights = _run_collaboration(
            backend_name, lambda: SynchronousFLStrategy(straggler_top_k=1))
        assert history.accuracies() == reference_history.accuracies()
        assert history.times_s() == reference_history.times_s()
        assert ([record.mean_train_loss for record in history.records]
                == [record.mean_train_loss
                    for record in reference_history.records])
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    @pytest.mark.parametrize("backend_name", CONCURRENT_BACKENDS)
    def test_helios_history_bit_identical(self, backend_name):
        """Masked soft-training (RNG-heavy path) is backend-invariant."""
        factory = lambda: HeliosStrategy(HeliosConfig(straggler_top_k=1))
        reference_history, reference_weights = _run_collaboration(
            "serial", factory)
        history, weights = _run_collaboration(backend_name, factory)
        assert history.accuracies() == reference_history.accuracies()
        for key in reference_weights:
            np.testing.assert_array_equal(weights[key],
                                          reference_weights[key])

    def test_client_state_advances_identically(self):
        """Post-batch client RNG/model state matches a serial run."""
        def state_after_two_batches(backend_name):
            sim = make_tiny_simulation()
            sim.set_backend(backend_name, max_workers=2)
            try:
                sim.train_clients(sim.client_indices())
                updates = sim.train_clients(sim.client_indices())
            finally:
                sim.backend.close()
            rng_states = [client.rng.bit_generator.state["state"]
                          for client in sim.clients]
            return updates, rng_states

        serial_updates, serial_rng = state_after_two_batches("serial")
        for backend_name in CONCURRENT_BACKENDS:
            updates, rng_states = state_after_two_batches(backend_name)
            assert rng_states == serial_rng
            for expected, actual in zip(serial_updates, updates):
                assert expected.train_loss == actual.train_loss


class TestFailurePaths:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_crashed_worker_surfaces_exception(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        jobs = [TrainingJob(index=0, weights=sim.server.get_global_weights(),
                            local_epochs=0)]  # invalid: crashes the worker
        try:
            with pytest.raises(ValueError, match="local_epochs"):
                sim.run_jobs(jobs)
        finally:
            sim.backend.close()

    @pytest.mark.parametrize("backend_name", CONCURRENT_BACKENDS)
    def test_partial_batch_failure_fails_whole_batch(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=0, weights=weights),
                TrainingJob(index=1, weights=weights, local_epochs=0),
                TrainingJob(index=2, weights=weights)]
        try:
            with pytest.raises(ValueError):
                sim.run_jobs(jobs)
        finally:
            sim.backend.close()


class TestMapOrdered:
    def test_serial_map(self):
        assert SerialBackend().map_ordered(str, [1, 2, 3]) == ["1", "2", "3"]

    def test_thread_map_preserves_order(self):
        with ThreadPoolBackend(max_workers=3) as backend:
            assert backend.map_ordered(lambda x: x * x,
                                       list(range(10))) == \
                [x * x for x in range(10)]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_map_ordered_on_every_backend(self, backend_name):
        """Every backend maps in input order (process backends need a
        picklable function)."""
        with make_backend(backend_name, max_workers=3) as backend:
            assert backend.map_ordered(_square, list(range(10))) == \
                [x * x for x in range(10)]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_map_ordered_empty_items(self, backend_name):
        with make_backend(backend_name, max_workers=2) as backend:
            assert backend.map_ordered(_square, []) == []

    def test_persistent_map_with_more_items_than_workers(self):
        with PersistentProcessBackend(max_workers=2) as backend:
            assert backend.map_ordered(_square, list(range(17))) == \
                [x * x for x in range(17)]

    def test_persistent_map_error_propagates(self):
        with PersistentProcessBackend(max_workers=2) as backend:
            with pytest.raises(ZeroDivisionError):
                backend.map_ordered(_reciprocal, [2, 0, 1])

    def test_straggler_identification_with_backend(self):
        """Fleet profiling fans out over a backend's map_ordered."""
        model = make_tiny_model()
        identifier = StragglerIdentifier(model, (1, 8, 8),
                                         samples_per_cycle=1000)
        devices = [FAST_DEVICE, FAST_DEVICE.scaled(name="fast-2"),
                   SLOW_DEVICE]
        serial_report = identifier.identify_by_resources(devices)
        with ThreadPoolBackend(max_workers=2) as backend:
            pooled_report = identifier.identify_by_resources(
                devices, backend=backend)
        assert pooled_report.cycle_seconds == serial_report.cycle_seconds
        assert (pooled_report.straggler_indices
                == serial_report.straggler_indices)


class TestSimulationBackendSelection:
    def test_default_backend_is_serial(self, tiny_simulation):
        assert isinstance(tiny_simulation.backend, SerialBackend)

    def test_backend_by_name_at_construction(self):
        from repro.fl import FederatedSimulation
        base = make_tiny_simulation()
        sim = FederatedSimulation(base.clients, base.server, (1, 8, 8),
                                  backend="thread")
        try:
            assert isinstance(sim.backend, ThreadPoolBackend)
        finally:
            sim.backend.close()

    def test_set_backend_closes_previous(self):
        sim = make_tiny_simulation()
        first = sim.set_backend("thread", max_workers=1)
        first.map_ordered(lambda x: x, [1])  # force pool creation
        second = sim.set_backend("serial")
        assert first._pool is None  # closed by the swap
        assert isinstance(second, SerialBackend)
        assert sim.backend is second

    def test_set_backend_same_name_twice_closes_old_pool(self):
        """A same-name swap builds a fresh pool and shuts the old one."""
        sim = make_tiny_simulation()
        first = sim.set_backend("thread", max_workers=1)
        first.map_ordered(lambda x: x, [1])  # force pool creation
        second = sim.set_backend("thread", max_workers=1)
        try:
            assert second is not first
            assert first._pool is None  # old pool closed, not leaked
            assert sim.backend is second
        finally:
            sim.close()

    def test_set_backend_same_instance_is_noop(self):
        sim = make_tiny_simulation()
        backend = sim.set_backend("thread", max_workers=1)
        backend.map_ordered(lambda x: x, [1])
        try:
            assert sim.set_backend(backend) is backend
            assert backend._pool is not None  # untouched
        finally:
            sim.close()

    def test_simulation_close_and_context_manager(self):
        with make_tiny_simulation() as sim:
            backend = sim.set_backend("thread", max_workers=1)
            backend.map_ordered(lambda x: x, [1])
        assert backend._pool is None  # closed on context exit
        sim.close()  # idempotent

    def test_set_backend_migrates_mid_collaboration(self):
        """serial → persistent mid-run is bit-identical to all-serial."""
        reference = make_tiny_simulation()
        reference.train_clients(reference.client_indices())
        reference_updates = reference.train_clients(
            reference.client_indices())

        sim = make_tiny_simulation()
        sim.train_clients(sim.client_indices())  # first batch on serial
        sim.set_backend("persistent", max_workers=2)
        try:
            updates = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for expected, actual in zip(reference_updates, updates):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])


class TestBackendLifecycle:
    """Lazy pool creation, close idempotency, and re-use after close."""

    @pytest.mark.parametrize("cls", [ThreadPoolBackend, ProcessPoolBackend])
    def test_pool_created_lazily(self, cls):
        backend = cls(max_workers=1)
        assert backend._pool is None
        try:
            backend.map_ordered(_square, [2])
            assert backend._pool is not None
        finally:
            backend.close()

    def test_persistent_workers_spawn_lazily(self):
        backend = PersistentProcessBackend(max_workers=2)
        assert not backend._workers
        try:
            backend.map_ordered(_square, [1])
            assert len(backend._workers) == 1  # one item → one worker slot
        finally:
            backend.close()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_close_is_idempotent(self, backend_name):
        backend = make_backend(backend_name, max_workers=1)
        backend.map_ordered(_square, [1])
        backend.close()
        backend.close()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_close_before_any_use(self, backend_name):
        """close() on a never-used backend is a safe no-op."""
        backend = make_backend(backend_name, max_workers=1)
        backend.close()
        backend.close()

    def test_persistent_close_after_worker_death(self):
        """Regression: closing a pool whose worker was killed must not
        raise (close-after-worker-death used to be untested)."""
        backend = PersistentProcessBackend(max_workers=1)
        try:
            backend.map_ordered(_square, [1])
            worker = backend._workers[0]
            worker.process.kill()
            worker.process.join()
        finally:
            backend.close()
        backend.close()
        assert not backend._workers

    def test_persistent_worker_death_aborts_batch_by_default(self):
        """Default policy is the historical one: a dead worker fails the
        batch with a slot-identified error and shuts the pool down."""
        sim = make_tiny_simulation()
        backend = sim.set_backend("persistent", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            worker = backend._workers[0]
            worker.process.kill()
            worker.process.join()
            with pytest.raises(RuntimeError, match="persistent worker"):
                sim.train_clients(sim.client_indices())
            assert not backend._workers
        finally:
            sim.close()

    def test_persistent_worker_death_rebalance_bit_identical(self):
        """Under on_failure='rebalance' a killed pipe worker respawns
        and the retried batch matches an undisturbed serial run."""
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(serial_sim.client_indices())

        sim = make_tiny_simulation()
        backend = sim.set_backend("persistent", max_workers=2,
                                  on_shard_failure="rebalance")
        try:
            sim.train_clients(sim.client_indices())
            worker = backend._workers[0]
            worker.process.kill()
            worker.process.join()
            second = sim.train_clients(sim.client_indices())
            # The pool healed: fresh workers, residents rebuilt.
            assert backend._workers
            assert all(w.process.is_alive()
                       for w in backend._workers.values())
        finally:
            sim.close()
        for expected, actual in zip(serial_second, second):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_concurrent_close_from_two_threads(self):
        """Regression: close() racing close() (teardown at interpreter
        exit racing an explicit close, two owners) must not raise."""
        import threading

        backend = PersistentProcessBackend(max_workers=2)
        backend.map_ordered(_square, [1, 2, 3])
        errors = []

        def close_backend():
            try:
                backend.close()
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=close_backend)
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors
        assert not backend._workers

    @pytest.mark.parametrize("backend_name", CONCURRENT_BACKENDS)
    def test_reuse_after_close_respawns_pool(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            first = sim.train_clients([0, 1, 2])
            sim.backend.close()
            # The pool is gone; the next batch must lazily rebuild it
            # (for the persistent backend: re-ship specs + RNG digests).
            second = sim.train_clients([0, 1, 2])
        finally:
            sim.close()
        assert [update.client_id for update in second] == [0, 1, 2]
        assert all(np.isfinite(update.train_loss) for update in second)
        # The reused pool continues each client's RNG stream where the
        # first batch left it — bit-identical to an uninterrupted serial
        # run of two batches.
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients([0, 1, 2])
        serial_second = serial_sim.train_clients([0, 1, 2])
        for expected, actual in zip(serial_second, second):
            assert expected.train_loss == actual.train_loss


class TestPersistentResidency:
    """Sticky placement, one-time spec shipping, and invalidation.

    Parametrized over both worker-resident backends (pipe workers and
    socket shards) wherever the contract is transport-independent.
    """

    @pytest.mark.parametrize("backend_name", RESIDENT_BACKENDS)
    def test_sticky_placement_across_batches(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            placement_first = dict(sim.backend._placement)
            sim.train_clients(sim.client_indices())
            assert sim.backend._placement == placement_first
            assert set(placement_first.values()) <= {0, 1}
        finally:
            sim.close()

    def test_spec_shipped_once_then_payload_shrinks(self):
        sim = make_tiny_simulation()
        sim.set_backend("persistent", max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights)
                for index in sim.client_indices()]
        try:
            cold = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
            sim.run_jobs(jobs)
            warm = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
            assert warm < cold  # specs (datasets!) no longer travel
            assert sim.backend.last_dispatch_bytes == cold
            sim.run_jobs(jobs)
            assert sim.backend.last_dispatch_bytes == warm
        finally:
            sim.close()

    def test_warm_payload_independent_of_dataset_size(self):
        """The headline property: dispatch is O(weights), not O(dataset)."""
        def warm_payload(samples_per_client):
            sim = make_tiny_simulation(samples_per_client=samples_per_client)
            sim.set_backend("persistent", max_workers=2)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            try:
                sim.run_jobs(jobs)
                persistent = sim.backend.dispatch_payload_bytes(
                    sim.clients, jobs)
                process = ProcessPoolBackend().dispatch_payload_bytes(
                    sim.clients, jobs)
            finally:
                sim.close()
            return persistent, process

        small_persistent, small_process = warm_payload(20)
        large_persistent, large_process = warm_payload(200)
        # Warm persistent dispatch does not grow with the dataset (the
        # RNG digests' integer values pickle to ±a few bytes) …
        assert abs(large_persistent - small_persistent) \
            <= 0.01 * small_persistent
        # … while whole-client pickling does, and is strictly larger.
        assert large_process > small_process
        assert small_persistent < small_process
        assert large_persistent < large_process

    @pytest.mark.parametrize("backend_name", RESIDENT_BACKENDS)
    def test_invalidate_client_reships_spec(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights)
                for index in sim.client_indices()]
        try:
            sim.run_jobs(jobs)
            warm = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
            sim.invalidate_cost_caches(0)  # lifecycle event → backend hook
            invalidated = sim.backend.dispatch_payload_bytes(sim.clients,
                                                             jobs)
            assert invalidated > warm  # client 0's spec travels again
            sim.run_jobs(jobs)  # and the batch still trains fine
        finally:
            sim.close()

    @pytest.mark.parametrize("backend_name", RESIDENT_BACKENDS)
    def test_device_mutation_routed_through_backend(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            assert 2 in sim.backend._resident
            new_device = FAST_DEVICE.scaled(name="upgraded-straggler")
            sim.set_client_device(2, new_device)
            assert 2 not in sim.backend._resident
            assert sim.client(2).device.name == "upgraded-straggler"
            assert sim.client(2).spec.device.name == "upgraded-straggler"
            updates = sim.train_clients(sim.client_indices())
            assert updates[2].client_name == "upgraded-straggler"
        finally:
            sim.close()

    @pytest.mark.parametrize("mutate", ["dataset", "config"])
    def test_identity_mutation_reships_spec_automatically(self, mutate):
        """dataset/config setters bump the spec version: the resident
        replica is rebuilt even without an explicit invalidation, so the
        persistent run stays bit-identical to a serial one."""
        from repro.fl import ClientConfig
        from ..conftest import make_tiny_dataset

        def run(backend_name):
            sim = make_tiny_simulation()
            if backend_name != "serial":
                sim.set_backend(backend_name, max_workers=2)
            try:
                sim.train_clients(sim.client_indices())
                if mutate == "dataset":
                    sim.client(1).dataset = make_tiny_dataset(24, seed=11)
                else:
                    sim.client(1).config = ClientConfig(batch_size=20,
                                                        local_epochs=2,
                                                        learning_rate=0.1)
                return sim.train_clients(sim.client_indices())
            finally:
                sim.close()

        serial_updates = run("serial")
        persistent_updates = run("persistent")
        for expected, actual in zip(serial_updates, persistent_updates):
            assert expected.num_samples == actual.num_samples
            assert expected.local_epochs == actual.local_epochs
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_add_client_trains_on_persistent_backend(self):
        from repro.fl import ClientConfig, FLClient
        from ..conftest import make_tiny_dataset
        sim = make_tiny_simulation()
        sim.set_backend("persistent", max_workers=2)
        try:
            sim.train_clients(sim.client_indices())
            joiner = FLClient(client_id=3,
                              dataset=make_tiny_dataset(40, seed=5),
                              device=FAST_DEVICE.scaled(name="joiner"),
                              model_factory=make_tiny_model,
                              config=ClientConfig(batch_size=20))
            index = sim.add_client(joiner)
            updates = sim.train_clients(sim.client_indices())
            assert updates[index].client_name == "joiner"
        finally:
            sim.close()

    def test_shared_backend_across_simulations_reships_specs(self):
        """Adopting a backend used by another fleet must not reuse its
        worker-resident replicas."""
        backend = PersistentProcessBackend(max_workers=2)
        try:
            first = make_tiny_simulation()
            first.set_backend(backend)
            first.train_clients(first.client_indices())

            reference = make_tiny_simulation(seed=3)
            reference_updates = reference.train_clients(
                reference.client_indices())

            second = make_tiny_simulation(seed=3)
            second.set_backend(backend)
            updates = second.train_clients(second.client_indices())
            for expected, actual in zip(reference_updates, updates):
                assert expected.train_loss == actual.train_loss
                for key in expected.weights:
                    np.testing.assert_array_equal(expected.weights[key],
                                                  actual.weights[key])
        finally:
            backend.close()


class TestWireCodecOnPipes:
    """Delta shipping + compression on the persistent pipe backend."""

    @pytest.mark.parametrize("codec_kwargs", [
        {"wire_compression": "zlib"},
        {"delta_shipping": False},
        {"wire_compression": "zlib", "delta_shipping": False},
    ], ids=["zlib", "no-delta", "zlib-no-delta"])
    def test_codec_variants_bit_identical_to_serial(self, codec_kwargs):
        reference = make_tiny_simulation()
        expected = reference.train_clients(reference.client_indices())
        reference.close()

        sim = make_tiny_simulation()
        sim.set_backend("persistent", max_workers=2, **codec_kwargs)
        try:
            actual = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for want, got in zip(expected, actual):
            assert want.train_loss == got.train_loss
            for key in want.weights:
                np.testing.assert_array_equal(want.weights[key],
                                              got.weights[key])

    def test_warm_delta_dispatch_shrinks_at_least_5x(self):
        def warm_bytes(**codec_kwargs):
            sim = make_tiny_simulation()
            sim.set_backend("persistent", max_workers=2, **codec_kwargs)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            try:
                sim.run_jobs(jobs)
                return sim.backend.dispatch_payload_bytes(sim.clients,
                                                          jobs)
            finally:
                sim.close()

        full = warm_bytes(delta_shipping=False)
        delta = warm_bytes()
        assert full >= 5 * delta

    def test_zlib_compresses_cold_dispatch(self):
        """Specs (datasets are float arrays) compress: the cold payload
        under zlib must be smaller than raw."""
        def cold_bytes(**codec_kwargs):
            sim = make_tiny_simulation()
            sim.set_backend("persistent", max_workers=2, **codec_kwargs)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            try:
                return sim.backend.dispatch_payload_bytes(sim.clients,
                                                          jobs)
            finally:
                sim.close()

        raw = cold_bytes()
        packed = cold_bytes(wire_compression="zlib")
        assert packed < raw

    def test_worker_restart_falls_back_to_full_snapshot(self):
        """A respawned pipe worker (fresh decoder state) must be served
        a full snapshot, and training stays bit-identical."""
        reference = make_tiny_simulation()
        expected_1 = reference.train_clients(reference.client_indices())
        expected_2 = reference.train_clients(reference.client_indices())
        reference.close()

        sim = make_tiny_simulation()
        backend = sim.set_backend("persistent", max_workers=2,
                                  on_shard_failure="rebalance")
        try:
            actual_1 = sim.train_clients(sim.client_indices())
            # Kill one worker between batches: the delta channel to that
            # slot is warm and dies with it.
            victim = backend._workers[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            actual_2 = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for want, got in zip(expected_1 + expected_2, actual_1 + actual_2):
            assert want.train_loss == got.train_loss
            for key in want.weights:
                np.testing.assert_array_equal(want.weights[key],
                                              got.weights[key])

    def test_codec_options_rejected_for_non_resident_backends(self):
        with pytest.raises(ValueError, match="wire_compression"):
            make_backend("thread", wire_compression="zlib")
        with pytest.raises(ValueError, match="delta_shipping"):
            make_backend("process", delta_shipping=False)
        with pytest.raises(ValueError, match="wire codec"):
            make_backend(PersistentProcessBackend(max_workers=1),
                         wire_compression="zlib")
        with pytest.raises(ValueError, match="compression"):
            PersistentProcessBackend(wire_compression="lz9")

    def test_oversized_batch_error_names_kind_and_breakdown(self):
        """Satellite regression: a batch exceeding max_frame_bytes fails
        with the shard identity, and the underlying FrameTooLargeError
        names the message kind and the weights-vs-skeleton breakdown."""
        from repro.fl import ShardError
        from repro.fl.transport import FrameTooLargeError

        sim = make_tiny_simulation()
        backend = ShardedSocketBackend(shards=1, max_frame_bytes=4096)
        sim.set_backend(backend)
        try:
            with pytest.raises(ShardError) as excinfo:
                sim.train_clients(sim.client_indices())
            cause = excinfo.value.__cause__
            assert isinstance(cause, FrameTooLargeError)
            message = str(cause)
            assert "'run'" in message
            assert "skeleton" in message
            assert "ndarray payload" in message
        finally:
            sim.close()

    def test_reply_weight_arrays_are_writable(self):
        """Regression: zero-copy decoded reply arrays must be writable
        on the pipe backend too (parity with every other backend)."""
        sim = make_tiny_simulation()
        sim.set_backend("persistent", max_workers=2)
        try:
            updates = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        for update in updates:
            for value in update.weights.values():
                assert value.flags.writeable
                value[...] = value  # in-place write must not raise
