"""Tests for client-selection policies."""

import numpy as np
import pytest

from repro.fl import (FullParticipation, RandomSampling,
                      ResourceAwareSampling)

from ..conftest import make_tiny_simulation


@pytest.fixture
def sim():
    return make_tiny_simulation(num_capable=2, num_stragglers=1)


class TestFullParticipation:
    def test_everyone_selected(self, sim):
        assert FullParticipation().select(1, sim) == [0, 1, 2]


class TestRandomSampling:
    def test_fraction_respected(self, sim):
        sampler = RandomSampling(fraction=0.67,
                                 rng=np.random.default_rng(0))
        assert len(sampler.select(1, sim)) == 2

    def test_minimum_enforced(self, sim):
        sampler = RandomSampling(fraction=0.01, minimum=2,
                                 rng=np.random.default_rng(0))
        assert len(sampler.select(1, sim)) == 2

    def test_selection_changes_between_cycles(self, sim):
        sampler = RandomSampling(fraction=0.34,
                                 rng=np.random.default_rng(0))
        selections = {tuple(sampler.select(cycle, sim))
                      for cycle in range(20)}
        assert len(selections) > 1

    def test_indices_are_valid(self, sim):
        sampler = RandomSampling(fraction=0.67,
                                 rng=np.random.default_rng(1))
        for cycle in range(5):
            assert set(sampler.select(cycle, sim)) <= {0, 1, 2}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RandomSampling(fraction=0.0)
        with pytest.raises(ValueError):
            RandomSampling(minimum=0)


class TestResourceAwareSampling:
    def test_straggler_excluded_by_tight_deadline(self, sim):
        # The tiny test fleet is communication-dominated, so the straggler
        # is only ~15% slower end-to-end; a tight factor still excludes it.
        sampler = ResourceAwareSampling(deadline_factor=1.1)
        selected = sampler.select(1, sim)
        assert 2 not in selected
        assert set(selected) == {0, 1}

    def test_loose_deadline_keeps_everyone(self, sim):
        deadline = sim.slowest_full_cycle_seconds() * 2
        sampler = ResourceAwareSampling(deadline_s=deadline)
        assert sampler.select(1, sim) == [0, 1, 2]

    def test_minimum_keeps_fastest_clients(self, sim):
        sampler = ResourceAwareSampling(deadline_s=1e-12, minimum=2)
        selected = sampler.select(1, sim)
        assert len(selected) == 2
        assert 2 not in selected

    def test_explicit_deadline_used(self, sim):
        sampler = ResourceAwareSampling(deadline_s=123.0)
        assert sampler.cycle_deadline(sim) == 123.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ResourceAwareSampling(deadline_s=0.0)
        with pytest.raises(ValueError):
            ResourceAwareSampling(deadline_factor=0.0)
        with pytest.raises(ValueError):
            ResourceAwareSampling(minimum=0)
