"""Tests for the FL client (spec/state split included)."""

import pickle

import numpy as np
import pytest

from repro.fl import ClientConfig, ClientSpec, FLClient
from repro.nn import ModelMask

from ..conftest import (FAST_DEVICE, SLOW_DEVICE, make_tiny_dataset,
                        make_tiny_model)


@pytest.fixture
def client():
    return FLClient(client_id=0, dataset=make_tiny_dataset(60, seed=0),
                    device=SLOW_DEVICE, model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20, learning_rate=0.2),
                    seed=0)


class TestConfig:
    def test_defaults_valid(self):
        config = ClientConfig()
        assert config.batch_size > 0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            ClientConfig(batch_size=0)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            ClientConfig(local_epochs=0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            ClientConfig(learning_rate=-0.1)


class TestLocalTraining:
    def test_empty_dataset_rejected(self):
        empty = make_tiny_dataset(5, seed=0).subset([])
        with pytest.raises(ValueError):
            FLClient(0, empty, SLOW_DEVICE, make_tiny_model)

    def test_update_contains_all_parameters(self, client):
        global_weights = make_tiny_model().get_weights()
        update = client.local_train(global_weights)
        assert set(update.weights) == set(global_weights)

    def test_training_changes_weights(self, client):
        global_weights = make_tiny_model().get_weights()
        update = client.local_train(global_weights)
        changed = any(not np.allclose(update.weights[name],
                                      global_weights[name])
                      for name in global_weights)
        assert changed

    def test_update_metadata(self, client):
        update = client.local_train(make_tiny_model().get_weights(),
                                    base_cycle=5)
        assert update.client_id == 0
        assert update.num_samples == 60
        assert update.base_cycle == 5
        assert update.local_epochs == 1
        assert np.isfinite(update.train_loss)

    def test_neuron_fraction_defaults_to_one(self, client):
        update = client.local_train(make_tiny_model().get_weights())
        assert update.neuron_fraction == 1.0

    def test_local_epochs_override(self, client):
        update = client.local_train(make_tiny_model().get_weights(),
                                    local_epochs=3)
        assert update.local_epochs == 3

    def test_invalid_epochs_override(self, client):
        with pytest.raises(ValueError):
            client.local_train(make_tiny_model().get_weights(),
                               local_epochs=0)

    def test_starts_from_global_weights(self, client):
        """Two cycles from the same global weights produce the same update."""
        global_weights = make_tiny_model().get_weights()
        first = client.local_train(global_weights)
        client.rng = np.random.default_rng(0 + 1000 * client.client_id)
        second = client.local_train(global_weights)
        for name in first.weights:
            np.testing.assert_allclose(first.weights[name],
                                       second.weights[name])


class TestMaskedTraining:
    def test_masked_neurons_keep_global_values(self, client):
        global_weights = make_tiny_model().get_weights()
        mask_arrays = {"fc1": np.zeros(16, dtype=bool),
                       "fc2": np.ones(8, dtype=bool),
                       "output": np.ones(4, dtype=bool)}
        mask_arrays["fc1"][:4] = True
        mask = ModelMask(mask_arrays)
        update = client.local_train(global_weights, mask=mask)
        # Rows of fc1/weight for masked-out neurons must be untouched.
        np.testing.assert_allclose(update.weights["fc1/weight"][4:],
                                   global_weights["fc1/weight"][4:])
        # At least one selected neuron must have changed.
        assert not np.allclose(update.weights["fc1/weight"][:4],
                               global_weights["fc1/weight"][:4])

    def test_update_records_mask(self, client):
        mask = ModelMask.random(make_tiny_model(),
                                {"fc1": 0.5, "fc2": 0.5, "output": 0.5},
                                np.random.default_rng(0))
        update = client.local_train(make_tiny_model().get_weights(),
                                    mask=mask)
        assert update.mask is not None
        assert update.neuron_fraction == pytest.approx(mask.active_fraction())

    def test_mask_cleared_after_training(self, client):
        mask = ModelMask.random(make_tiny_model(),
                                {"fc1": 0.25, "fc2": 0.25, "output": 0.25},
                                np.random.default_rng(0))
        client.local_train(make_tiny_model().get_weights(), mask=mask)
        assert client.model.active_neuron_fraction() == 1.0


class TestSpecStateSplit:
    """ClientSpec (picklable identity) vs. runtime state (model + RNG)."""

    def _spec(self, seed=0):
        return ClientSpec(client_id=2, dataset=make_tiny_dataset(40, seed=1),
                          device=SLOW_DEVICE, model_factory=make_tiny_model,
                          config=ClientConfig(batch_size=20), seed=seed)

    def test_spec_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            ClientSpec(client_id=0,
                       dataset=make_tiny_dataset(5, seed=0).subset([]),
                       device=SLOW_DEVICE, model_factory=make_tiny_model)

    def test_build_twice_is_bit_identical(self):
        spec = self._spec()
        first, second = spec.build(), spec.build()
        weights_a, weights_b = (first.model.get_weights(),
                                second.model.get_weights())
        for name in weights_a:
            np.testing.assert_array_equal(weights_a[name], weights_b[name])
        assert (first.rng.bit_generator.state
                == second.rng.bit_generator.state)

    def test_spec_round_trips_through_pickle(self):
        rebuilt = pickle.loads(pickle.dumps(self._spec())).build()
        reference = self._spec().build()
        update_a = rebuilt.local_train(make_tiny_model().get_weights())
        update_b = reference.local_train(make_tiny_model().get_weights())
        assert update_a.train_loss == update_b.train_loss

    def test_client_records_its_spec(self, client):
        spec = client.spec
        assert spec.client_id == client.client_id
        assert spec.device is client.device
        assert spec.client_type is FLClient

    def test_build_with_rng_state_resumes_stream(self, client):
        client.local_train(make_tiny_model().get_weights())
        resumed = client.spec.build(
            rng_state=client.rng.bit_generator.state)
        assert (resumed.rng.bit_generator.state
                == client.rng.bit_generator.state)

    def test_mutating_identity_replaces_spec(self, client):
        old_spec = client.spec
        client.device = FAST_DEVICE
        assert client.spec is not old_spec
        assert client.spec.device is FAST_DEVICE
        assert client.device is FAST_DEVICE
        assert old_spec.device is SLOW_DEVICE  # specs are immutable

    def test_get_set_state_round_trip(self, client):
        client.local_train(make_tiny_model().get_weights())
        state = client.get_state()
        fresh = client.spec.build()
        fresh.set_state(state)
        weights = client.model.get_weights()
        fresh_weights = fresh.model.get_weights()
        for name in weights:
            np.testing.assert_array_equal(weights[name],
                                          fresh_weights[name])
        assert (fresh.rng.bit_generator.state
                == client.rng.bit_generator.state)

    def test_subclass_round_trips_through_spec(self):
        class_spec = _CountingClient(
            client_id=0, dataset=make_tiny_dataset(40, seed=0),
            device=SLOW_DEVICE, model_factory=make_tiny_model).spec
        assert class_spec.client_type is _CountingClient
        assert isinstance(class_spec.build(), _CountingClient)


class _CountingClient(FLClient):
    """Subclass used to check that specs preserve the concrete type."""

    def local_train(self, *args, **kwargs):
        self.trainings = getattr(self, "trainings", 0) + 1
        return super().local_train(*args, **kwargs)


class TestEvaluation:
    def test_evaluate_with_explicit_weights(self, client):
        dataset = make_tiny_dataset(40, seed=9)
        accuracy = client.evaluate(dataset,
                                   weights=make_tiny_model().get_weights())
        assert 0.0 <= accuracy <= 1.0

    def test_repeated_local_training_learns(self, client):
        weights = make_tiny_model().get_weights()
        for _ in range(8):
            update = client.local_train(weights)
            weights = update.weights
        accuracy = client.evaluate(client.dataset, weights=weights)
        assert accuracy > 0.5
