"""Tests for the FL client."""

import numpy as np
import pytest

from repro.fl import ClientConfig, FLClient
from repro.nn import ModelMask

from ..conftest import SLOW_DEVICE, make_tiny_dataset, make_tiny_model


@pytest.fixture
def client():
    return FLClient(client_id=0, dataset=make_tiny_dataset(60, seed=0),
                    device=SLOW_DEVICE, model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20, learning_rate=0.2),
                    seed=0)


class TestConfig:
    def test_defaults_valid(self):
        config = ClientConfig()
        assert config.batch_size > 0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            ClientConfig(batch_size=0)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            ClientConfig(local_epochs=0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            ClientConfig(learning_rate=-0.1)


class TestLocalTraining:
    def test_empty_dataset_rejected(self):
        empty = make_tiny_dataset(5, seed=0).subset([])
        with pytest.raises(ValueError):
            FLClient(0, empty, SLOW_DEVICE, make_tiny_model)

    def test_update_contains_all_parameters(self, client):
        global_weights = make_tiny_model().get_weights()
        update = client.local_train(global_weights)
        assert set(update.weights) == set(global_weights)

    def test_training_changes_weights(self, client):
        global_weights = make_tiny_model().get_weights()
        update = client.local_train(global_weights)
        changed = any(not np.allclose(update.weights[name],
                                      global_weights[name])
                      for name in global_weights)
        assert changed

    def test_update_metadata(self, client):
        update = client.local_train(make_tiny_model().get_weights(),
                                    base_cycle=5)
        assert update.client_id == 0
        assert update.num_samples == 60
        assert update.base_cycle == 5
        assert update.local_epochs == 1
        assert np.isfinite(update.train_loss)

    def test_neuron_fraction_defaults_to_one(self, client):
        update = client.local_train(make_tiny_model().get_weights())
        assert update.neuron_fraction == 1.0

    def test_local_epochs_override(self, client):
        update = client.local_train(make_tiny_model().get_weights(),
                                    local_epochs=3)
        assert update.local_epochs == 3

    def test_invalid_epochs_override(self, client):
        with pytest.raises(ValueError):
            client.local_train(make_tiny_model().get_weights(),
                               local_epochs=0)

    def test_starts_from_global_weights(self, client):
        """Two cycles from the same global weights produce the same update."""
        global_weights = make_tiny_model().get_weights()
        first = client.local_train(global_weights)
        client.rng = np.random.default_rng(0 + 1000 * client.client_id)
        second = client.local_train(global_weights)
        for name in first.weights:
            np.testing.assert_allclose(first.weights[name],
                                       second.weights[name])


class TestMaskedTraining:
    def test_masked_neurons_keep_global_values(self, client):
        global_weights = make_tiny_model().get_weights()
        mask_arrays = {"fc1": np.zeros(16, dtype=bool),
                       "fc2": np.ones(8, dtype=bool),
                       "output": np.ones(4, dtype=bool)}
        mask_arrays["fc1"][:4] = True
        mask = ModelMask(mask_arrays)
        update = client.local_train(global_weights, mask=mask)
        # Rows of fc1/weight for masked-out neurons must be untouched.
        np.testing.assert_allclose(update.weights["fc1/weight"][4:],
                                   global_weights["fc1/weight"][4:])
        # At least one selected neuron must have changed.
        assert not np.allclose(update.weights["fc1/weight"][:4],
                               global_weights["fc1/weight"][:4])

    def test_update_records_mask(self, client):
        mask = ModelMask.random(make_tiny_model(),
                                {"fc1": 0.5, "fc2": 0.5, "output": 0.5},
                                np.random.default_rng(0))
        update = client.local_train(make_tiny_model().get_weights(),
                                    mask=mask)
        assert update.mask is not None
        assert update.neuron_fraction == pytest.approx(mask.active_fraction())

    def test_mask_cleared_after_training(self, client):
        mask = ModelMask.random(make_tiny_model(),
                                {"fc1": 0.25, "fc2": 0.25, "output": 0.25},
                                np.random.default_rng(0))
        client.local_train(make_tiny_model().get_weights(), mask=mask)
        assert client.model.active_neuron_fraction() == 1.0


class TestEvaluation:
    def test_evaluate_with_explicit_weights(self, client):
        dataset = make_tiny_dataset(40, seed=9)
        accuracy = client.evaluate(dataset,
                                   weights=make_tiny_model().get_weights())
        assert 0.0 <= accuracy <= 1.0

    def test_repeated_local_training_learns(self, client):
        weights = make_tiny_model().get_weights()
        for _ in range(8):
            update = client.local_train(weights)
            weights = update.weights
        accuracy = client.evaluate(client.dataset, weights=weights)
        assert accuracy > 0.5
