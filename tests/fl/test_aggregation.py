"""Tests for FedAvg and neuron-granular partial aggregation."""

import numpy as np
import pytest

from repro.fl import (ClientUpdate, ModelStructure, aggregate_full,
                      aggregate_partial, finalize_partials, fold_updates,
                      merge_partials, normalize_weights,
                      sample_count_weights)
from repro.nn import ModelMask

from ..conftest import make_tiny_model


def make_update(client_id, weights, num_samples=10, mask=None):
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=weights, num_samples=num_samples,
                        train_loss=0.0, mask=mask)


@pytest.fixture
def model():
    return make_tiny_model()


@pytest.fixture
def structure(model):
    return ModelStructure.from_model(model)


class TestWeightHelpers:
    def test_sample_count_weights(self):
        updates = [make_update(0, {}, num_samples=10),
                   make_update(1, {}, num_samples=30)]
        np.testing.assert_allclose(sample_count_weights(updates),
                                   [0.25, 0.75])

    def test_normalize_weights(self):
        np.testing.assert_allclose(normalize_weights([1.0, 3.0]),
                                   [0.25, 0.75])

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_weights([1.0, -1.0])

    def test_normalize_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_weights([0.0, 0.0])


class TestModelStructure:
    def test_every_parameter_covered(self, model, structure):
        assert set(structure.parameter_names()) == set(model.get_weights())

    def test_layer_assignment(self, structure):
        assert structure.layer_of("fc1/weight") == "fc1"
        assert structure.layer_of("output/bias") == "output"

    def test_neuron_axis_recorded(self, structure):
        assert structure["fc1/weight"].neuron_axis == 0

    def test_contains(self, structure):
        assert "fc1/weight" in structure
        assert "nonexistent" not in structure


class TestFullAggregation:
    def test_equal_weights_average(self):
        a = {"w": np.array([0.0, 0.0])}
        b = {"w": np.array([2.0, 4.0])}
        result = aggregate_full([make_update(0, a), make_update(1, b)])
        np.testing.assert_allclose(result["w"], [1.0, 2.0])

    def test_sample_count_weighting(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([4.0])}
        result = aggregate_full([make_update(0, a, num_samples=10),
                                 make_update(1, b, num_samples=30)])
        np.testing.assert_allclose(result["w"], [3.0])

    def test_explicit_weights(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([10.0])}
        result = aggregate_full([make_update(0, a), make_update(1, b)],
                                client_weights=[0.9, 0.1])
        np.testing.assert_allclose(result["w"], [1.0])

    def test_single_update_identity(self):
        weights = {"w": np.array([1.0, 2.0, 3.0])}
        result = aggregate_full([make_update(0, weights)])
        np.testing.assert_allclose(result["w"], weights["w"])

    def test_empty_updates_raise(self):
        with pytest.raises(ValueError):
            aggregate_full([])

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            aggregate_full([make_update(0, {"w": np.zeros(1)})],
                           client_weights=[0.5, 0.5])


class TestPartialAggregation:
    def test_unmasked_updates_match_fedavg(self, model, structure):
        global_weights = model.get_weights()
        update_a = make_update(0, {name: value + 1.0
                                   for name, value in global_weights.items()})
        update_b = make_update(1, {name: value + 3.0
                                   for name, value in global_weights.items()})
        partial = aggregate_partial(global_weights, [update_a, update_b],
                                    structure)
        full = aggregate_full([update_a, update_b])
        for name in global_weights:
            np.testing.assert_allclose(partial[name], full[name])

    def test_uncovered_neurons_keep_global_value(self, model, structure):
        global_weights = model.get_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        update = make_update(0, shifted, mask=mask)
        result = aggregate_partial(global_weights, [update], structure)
        # fc1 neurons were trained by nobody -> stay at the global value.
        np.testing.assert_allclose(result["fc1/weight"],
                                   global_weights["fc1/weight"])
        # fc2 neurons were covered -> move to the update's values.
        np.testing.assert_allclose(result["fc2/weight"],
                                   shifted["fc2/weight"])

    def test_covered_neurons_average_only_contributors(self, model, structure):
        global_weights = model.get_weights()
        mask_a = ModelMask({"fc1": np.zeros(16, dtype=bool),
                            "fc2": np.ones(8, dtype=bool),
                            "output": np.ones(4, dtype=bool)})
        mask_a["fc1"][0] = True
        weights_a = {name: value + 2.0
                     for name, value in global_weights.items()}
        weights_b = {name: value + 6.0
                     for name, value in global_weights.items()}
        update_a = make_update(0, weights_a, mask=mask_a)
        update_b = make_update(1, weights_b)  # full model
        result = aggregate_partial(global_weights, [update_a, update_b],
                                   structure)
        # Neuron 0 of fc1: both contribute equally -> +4 over global.
        np.testing.assert_allclose(
            result["fc1/weight"][0],
            global_weights["fc1/weight"][0] + 4.0)
        # Neuron 1 of fc1: only the full update contributes -> +6.
        np.testing.assert_allclose(
            result["fc1/weight"][1],
            global_weights["fc1/weight"][1] + 6.0)

    def test_client_weights_respected_per_neuron(self, model, structure):
        global_weights = model.get_weights()
        weights_a = {name: value + 0.0
                     for name, value in global_weights.items()}
        weights_b = {name: value + 10.0
                     for name, value in global_weights.items()}
        result = aggregate_partial(global_weights,
                                   [make_update(0, weights_a),
                                    make_update(1, weights_b)],
                                   structure, client_weights=[0.8, 0.2])
        np.testing.assert_allclose(
            result["fc1/weight"],
            global_weights["fc1/weight"] + 2.0)

    def test_bias_vectors_follow_masks(self, model, structure):
        global_weights = model.get_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        result = aggregate_partial(global_weights,
                                   [make_update(0, shifted, mask=mask)],
                                   structure)
        np.testing.assert_allclose(result["fc1/bias"],
                                   global_weights["fc1/bias"])

    def test_empty_updates_raise(self, model, structure):
        with pytest.raises(ValueError):
            aggregate_partial(model.get_weights(), [], structure)


class TestZeroCoverageNeurons:
    """Regression: neurons covered by zero updates must keep the global
    weights — never divide by a zero contribution sum into NaN/Inf.
    Shard-local folds make sparse coverage common, so these masks are
    deliberately adversarial."""

    def _masks(self, rng, exclude_everywhere):
        """Random masks that all exclude ``exclude_everywhere`` fc1 ids."""
        masks = []
        for _ in range(4):
            fc1 = rng.random(16) < 0.5
            fc1[list(exclude_everywhere)] = False
            masks.append(ModelMask({"fc1": fc1,
                                    "fc2": rng.random(8) < 0.5,
                                    "output": np.ones(4, dtype=bool)}))
        # Guarantee fc2 has at least one fully-uncovered neuron too.
        for mask in masks:
            mask["fc2"][0] = False
        return masks

    def test_uncovered_neurons_exact_and_finite(self, model, structure):
        rng = np.random.default_rng(42)
        global_weights = model.get_weights()
        excluded = (2, 5, 11)
        masks = self._masks(rng, excluded)
        updates = [
            make_update(i, {name: value + rng.normal(size=value.shape)
                            for name, value in global_weights.items()},
                        num_samples=10 * (i + 1), mask=mask)
            for i, mask in enumerate(masks)
        ]
        result = aggregate_partial(global_weights, updates, structure)
        for name, value in result.items():
            assert np.all(np.isfinite(value)), name
        for neuron in excluded:
            np.testing.assert_array_equal(
                result["fc1/weight"][neuron],
                global_weights["fc1/weight"][neuron])
            np.testing.assert_array_equal(
                result["fc1/bias"][neuron],
                global_weights["fc1/bias"][neuron])
        # fc2 neuron 0 is excluded by every mask too -> global kept.
        np.testing.assert_array_equal(
            result["fc2/weight"][0], global_weights["fc2/weight"][0])

    def test_zero_weight_contributor_counts_as_no_coverage(self, model,
                                                           structure):
        global_weights = model.get_weights()
        only_fc1_zero = ModelMask({"fc1": np.zeros(16, dtype=bool),
                                   "fc2": np.ones(8, dtype=bool),
                                   "output": np.ones(4, dtype=bool)})
        only_fc1_zero["fc1"][3] = True
        shifted = {name: value + 5.0
                   for name, value in global_weights.items()}
        updates = [make_update(0, shifted, mask=only_fc1_zero),
                   make_update(1, shifted)]
        # The only update covering fc1 neuron 3's sibling rows carries
        # zero aggregation weight: its neurons must count as uncovered.
        result = aggregate_partial(global_weights, updates, structure,
                                   client_weights=[1.0, 0.0])
        assert np.all(np.isfinite(result["fc1/weight"]))
        # Neuron 3: covered by the weighted update -> moves.
        np.testing.assert_allclose(result["fc1/weight"][3],
                                   shifted["fc1/weight"][3])
        # Neuron 4: only the zero-weight update covers it -> global kept.
        np.testing.assert_array_equal(result["fc1/weight"][4],
                                      global_weights["fc1/weight"][4])

    def test_every_neuron_uncovered_returns_global_model(self, model,
                                                         structure):
        global_weights = model.get_weights()
        nothing = ModelMask({"fc1": np.zeros(16, dtype=bool),
                             "fc2": np.zeros(8, dtype=bool),
                             "output": np.zeros(4, dtype=bool)})
        shifted = {name: value + 9.0
                   for name, value in global_weights.items()}
        result = aggregate_partial(global_weights,
                                   [make_update(0, shifted, mask=nothing)],
                                   structure)
        for name in global_weights:
            assert np.all(np.isfinite(result[name])), name
            np.testing.assert_array_equal(result[name],
                                          global_weights[name])

    def test_partial_coverage_without_fallback_raises(self, model,
                                                      structure):
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        update = make_update(0, model.get_weights(), mask=mask)
        folded = fold_updates([update], np.array([1.0]),
                              structure=ModelStructure.from_model(model),
                              partial=True)
        with pytest.raises(ValueError):
            finalize_partials(None, [folded],
                              structure=ModelStructure.from_model(model))


class TestPartialMerging:
    def test_merge_is_exact_concatenation(self, model, structure):
        rng = np.random.default_rng(3)
        global_weights = model.get_weights()
        updates = [
            make_update(i, {name: value + rng.normal(size=value.shape)
                            for name, value in global_weights.items()})
            for i in range(4)
        ]
        factors = sample_count_weights(updates)
        whole = fold_updates(updates, factors, structure, partial=True)
        left = fold_updates(updates[:2], factors[:2], structure,
                            partial=True)
        right = fold_updates(updates[2:], factors[2:], structure,
                             partial=True)
        merged = merge_partials([left, right])
        assert merged.num_updates == whole.num_updates
        for name in whole.weighted_sums:
            np.testing.assert_array_equal(merged.weighted_sums[name],
                                          whole.weighted_sums[name])
            np.testing.assert_array_equal(merged.weight_tables[name],
                                          whole.weight_tables[name])

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_partials([])
