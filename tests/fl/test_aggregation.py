"""Tests for FedAvg and neuron-granular partial aggregation."""

import numpy as np
import pytest

from repro.fl import (ClientUpdate, ModelStructure, aggregate_full,
                      aggregate_partial, normalize_weights,
                      sample_count_weights)
from repro.nn import ModelMask

from ..conftest import make_tiny_model


def make_update(client_id, weights, num_samples=10, mask=None):
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=weights, num_samples=num_samples,
                        train_loss=0.0, mask=mask)


@pytest.fixture
def model():
    return make_tiny_model()


@pytest.fixture
def structure(model):
    return ModelStructure.from_model(model)


class TestWeightHelpers:
    def test_sample_count_weights(self):
        updates = [make_update(0, {}, num_samples=10),
                   make_update(1, {}, num_samples=30)]
        np.testing.assert_allclose(sample_count_weights(updates),
                                   [0.25, 0.75])

    def test_normalize_weights(self):
        np.testing.assert_allclose(normalize_weights([1.0, 3.0]),
                                   [0.25, 0.75])

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_weights([1.0, -1.0])

    def test_normalize_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_weights([0.0, 0.0])


class TestModelStructure:
    def test_every_parameter_covered(self, model, structure):
        assert set(structure.parameter_names()) == set(model.get_weights())

    def test_layer_assignment(self, structure):
        assert structure.layer_of("fc1/weight") == "fc1"
        assert structure.layer_of("output/bias") == "output"

    def test_neuron_axis_recorded(self, structure):
        assert structure["fc1/weight"].neuron_axis == 0

    def test_contains(self, structure):
        assert "fc1/weight" in structure
        assert "nonexistent" not in structure


class TestFullAggregation:
    def test_equal_weights_average(self):
        a = {"w": np.array([0.0, 0.0])}
        b = {"w": np.array([2.0, 4.0])}
        result = aggregate_full([make_update(0, a), make_update(1, b)])
        np.testing.assert_allclose(result["w"], [1.0, 2.0])

    def test_sample_count_weighting(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([4.0])}
        result = aggregate_full([make_update(0, a, num_samples=10),
                                 make_update(1, b, num_samples=30)])
        np.testing.assert_allclose(result["w"], [3.0])

    def test_explicit_weights(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([10.0])}
        result = aggregate_full([make_update(0, a), make_update(1, b)],
                                client_weights=[0.9, 0.1])
        np.testing.assert_allclose(result["w"], [1.0])

    def test_single_update_identity(self):
        weights = {"w": np.array([1.0, 2.0, 3.0])}
        result = aggregate_full([make_update(0, weights)])
        np.testing.assert_allclose(result["w"], weights["w"])

    def test_empty_updates_raise(self):
        with pytest.raises(ValueError):
            aggregate_full([])

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            aggregate_full([make_update(0, {"w": np.zeros(1)})],
                           client_weights=[0.5, 0.5])


class TestPartialAggregation:
    def test_unmasked_updates_match_fedavg(self, model, structure):
        global_weights = model.get_weights()
        update_a = make_update(0, {name: value + 1.0
                                   for name, value in global_weights.items()})
        update_b = make_update(1, {name: value + 3.0
                                   for name, value in global_weights.items()})
        partial = aggregate_partial(global_weights, [update_a, update_b],
                                    structure)
        full = aggregate_full([update_a, update_b])
        for name in global_weights:
            np.testing.assert_allclose(partial[name], full[name])

    def test_uncovered_neurons_keep_global_value(self, model, structure):
        global_weights = model.get_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        update = make_update(0, shifted, mask=mask)
        result = aggregate_partial(global_weights, [update], structure)
        # fc1 neurons were trained by nobody -> stay at the global value.
        np.testing.assert_allclose(result["fc1/weight"],
                                   global_weights["fc1/weight"])
        # fc2 neurons were covered -> move to the update's values.
        np.testing.assert_allclose(result["fc2/weight"],
                                   shifted["fc2/weight"])

    def test_covered_neurons_average_only_contributors(self, model, structure):
        global_weights = model.get_weights()
        mask_a = ModelMask({"fc1": np.zeros(16, dtype=bool),
                            "fc2": np.ones(8, dtype=bool),
                            "output": np.ones(4, dtype=bool)})
        mask_a["fc1"][0] = True
        weights_a = {name: value + 2.0
                     for name, value in global_weights.items()}
        weights_b = {name: value + 6.0
                     for name, value in global_weights.items()}
        update_a = make_update(0, weights_a, mask=mask_a)
        update_b = make_update(1, weights_b)  # full model
        result = aggregate_partial(global_weights, [update_a, update_b],
                                   structure)
        # Neuron 0 of fc1: both contribute equally -> +4 over global.
        np.testing.assert_allclose(
            result["fc1/weight"][0],
            global_weights["fc1/weight"][0] + 4.0)
        # Neuron 1 of fc1: only the full update contributes -> +6.
        np.testing.assert_allclose(
            result["fc1/weight"][1],
            global_weights["fc1/weight"][1] + 6.0)

    def test_client_weights_respected_per_neuron(self, model, structure):
        global_weights = model.get_weights()
        weights_a = {name: value + 0.0
                     for name, value in global_weights.items()}
        weights_b = {name: value + 10.0
                     for name, value in global_weights.items()}
        result = aggregate_partial(global_weights,
                                   [make_update(0, weights_a),
                                    make_update(1, weights_b)],
                                   structure, client_weights=[0.8, 0.2])
        np.testing.assert_allclose(
            result["fc1/weight"],
            global_weights["fc1/weight"] + 2.0)

    def test_bias_vectors_follow_masks(self, model, structure):
        global_weights = model.get_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        result = aggregate_partial(global_weights,
                                   [make_update(0, shifted, mask=mask)],
                                   structure)
        np.testing.assert_allclose(result["fc1/bias"],
                                   global_weights["fc1/bias"])

    def test_empty_updates_raise(self, model, structure):
        with pytest.raises(ValueError):
            aggregate_partial(model.get_weights(), [], structure)
