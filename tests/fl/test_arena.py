"""Shared-memory weight arena tests: unit, codec and backend lifecycle.

Covers the writer/reader pair of :mod:`repro.fl.arena`, the codec's
arena segment kind, and the persistent backend's arena lifecycle —
including the guarantees the resource tracker cares about: generations
are retired as cycles advance, close/failover unlinks everything, and a
whole training run leaves ``/dev/shm`` exactly as it found it.
"""

import glob
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.fl import codec as wire_codec
from repro.fl import make_backend
from repro.fl.arena import (WEIGHT_ARENA_MODES, ArenaError, ArenaReader,
                            WeightArenaWriter)
from repro.fl.executor import TrainingJob

from ..conftest import make_tiny_simulation

SHM_DIR = "/dev/shm"


def shm_arena_files():
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        return []
    return sorted(glob.glob(os.path.join(SHM_DIR, "repro_arena_*")))


@pytest.fixture
def writer():
    arena_writer = WeightArenaWriter()
    yield arena_writer
    arena_writer.close()


@pytest.fixture
def reader():
    arena_reader = ArenaReader()
    yield arena_reader
    arena_reader.close()


class TestWriterReader:
    def test_stage_publish_resolve_round_trip(self, writer, reader):
        payload = np.arange(1024, dtype=np.float64)
        name, offset, length = writer.stage_segment(
            memoryview(payload).cast("B"))
        assert length == payload.nbytes
        assert writer.publish() == name
        view = reader.resolve_segment(name, offset, length)
        np.testing.assert_array_equal(
            np.frombuffer(view, dtype=np.float64), payload)

    def test_same_buffer_staged_once(self, writer):
        payload = np.arange(256, dtype=np.float64)
        first = writer.stage_segment(memoryview(payload).cast("B"))
        second = writer.stage_segment(memoryview(payload).cast("B"))
        assert first == second

    def test_distinct_buffers_get_aligned_offsets(self, writer):
        a = np.arange(13, dtype=np.uint8)
        b = np.arange(17, dtype=np.uint8)
        name_a, offset_a, _ = writer.stage_segment(memoryview(a))
        name_b, offset_b, _ = writer.stage_segment(memoryview(b))
        assert name_a == name_b
        assert offset_a != offset_b
        assert offset_a % 64 == 0 and offset_b % 64 == 0

    def test_publish_without_staging_is_noop(self, writer):
        assert writer.publish() is None
        assert writer.generation_count == 0

    def test_collect_keeps_only_most_recent_generation(self, writer,
                                                       reader):
        names = []
        for round_index in range(3):
            payload = np.full(128, round_index, dtype=np.float64)
            names.append(writer.stage_segment(
                memoryview(payload).cast("B"))[0])
            writer.publish()
        assert writer.generation_count == 3
        writer.collect()
        assert writer.generation_count == 1
        # The survivor resolves; the retired generations are gone.
        reader.resolve_segment(names[-1], 0, 128 * 8)
        fresh = ArenaReader()
        try:
            with pytest.raises(ArenaError, match="no longer exists"):
                fresh.resolve_segment(names[0], 0, 128 * 8)
        finally:
            fresh.close()

    def test_close_unlinks_everything_and_writer_is_reusable(self, writer):
        payload = np.arange(64, dtype=np.float64)
        name = writer.stage_segment(memoryview(payload).cast("B"))[0]
        writer.publish()
        writer.close()
        assert writer.generation_count == 0
        probing = ArenaReader()
        try:
            with pytest.raises(ArenaError, match="no longer exists"):
                probing.resolve_segment(name, 0, payload.nbytes)
        finally:
            probing.close()
        # Reusable: a fresh generation publishes under a new name.
        renamed = writer.stage_segment(memoryview(payload).cast("B"))[0]
        assert renamed != name
        assert writer.publish() == renamed

    def test_abandon_discards_staging(self, writer):
        payload = np.arange(64, dtype=np.float64)
        writer.stage_segment(memoryview(payload).cast("B"))
        writer.abandon()
        assert writer.publish() is None

    def test_missing_generation_raises(self, reader):
        with pytest.raises(ArenaError, match="no longer exists"):
            reader.resolve_segment("repro_arena_0_deadbeef_0", 0, 8)

    def test_out_of_bounds_descriptor_raises(self, writer, reader):
        payload = np.arange(64, dtype=np.float64)
        name, offset, length = writer.stage_segment(
            memoryview(payload).cast("B"))
        writer.publish()
        with pytest.raises(ArenaError, match="exceeds"):
            reader.resolve_segment(name, offset, length + 4096)

    def test_publish_stats_recorded(self, writer):
        payload = np.arange(1024, dtype=np.float64)
        writer.stage_segment(memoryview(payload).cast("B"))
        writer.publish()
        assert writer.last_publish_bytes == payload.nbytes
        assert writer.last_publish_seconds >= 0.0


class TestCodecArenaSegments:
    def _round_trip(self, message, writer, reader, compression="none"):
        frame = wire_codec.encode_message(message, arena=writer,
                                          compression=compression)
        writer.publish()
        blob = memoryview(bytearray(frame.tobytes()))
        return frame, wire_codec.decode_message(blob, arena=reader)

    def test_large_arrays_travel_as_descriptors(self, writer, reader):
        weights = {"w": np.arange(4096, dtype=np.float64),
                   "tiny": np.arange(4, dtype=np.float64)}
        frame, (kind, decoded) = self._round_trip(
            ("run", weights), writer, reader)
        assert kind == "run"
        np.testing.assert_array_equal(decoded["w"], weights["w"])
        np.testing.assert_array_equal(decoded["tiny"], weights["tiny"])
        # The frame itself no longer carries the big array's bytes …
        assert frame.total_bytes < weights["w"].nbytes
        # … and the decoded view aliases the shared-memory mapping.
        assert not decoded["w"].flags.owndata

    def test_shared_array_deduped_across_frames(self, writer):
        shared = np.arange(8192, dtype=np.float64)
        frame_a = wire_codec.encode_message(("run", {"w": shared}),
                                            arena=writer)
        frame_b = wire_codec.encode_message(("run", {"w": shared}),
                                            arena=writer)
        assert writer.publish() is not None
        assert writer.last_publish_bytes < 2 * shared.nbytes
        assert frame_a.total_bytes < shared.nbytes
        assert frame_b.total_bytes < shared.nbytes
        writer.collect()

    def test_arena_frame_without_reader_raises(self, writer):
        weights = {"w": np.arange(4096, dtype=np.float64)}
        frame = wire_codec.encode_message(("run", weights), arena=writer)
        writer.publish()
        blob = memoryview(bytearray(frame.tobytes()))
        with pytest.raises(wire_codec.CodecError, match="single-host"):
            wire_codec.decode_message(blob)

    def test_arena_segments_skip_compression(self, writer, reader):
        weights = {"w": np.zeros(8192, dtype=np.float64)}
        frame, (_, decoded) = self._round_trip(("run", weights), writer,
                                               reader, compression="zlib")
        np.testing.assert_array_equal(decoded["w"], weights["w"])


class TestPersistentBackendArena:
    def test_modes_exported(self):
        assert WEIGHT_ARENA_MODES == ("off", "shm")
        from repro.fl import WEIGHT_ARENA_MODES as reexported
        assert reexported is WEIGHT_ARENA_MODES

    def test_arena_requires_persistent_backend(self):
        with pytest.raises(ValueError, match="single-host"):
            make_backend("sharded", weight_arena="shm")
        with pytest.raises(ValueError, match="weight_arena"):
            make_backend("thread", weight_arena="shm")

    def test_fusion_requires_resident_backend(self):
        with pytest.raises(ValueError, match="fusion"):
            make_backend("process", fusion="stacked")

    def test_instance_passthrough_rejects_arena_and_fusion(self):
        backend = make_backend("persistent", max_workers=1)
        try:
            with pytest.raises(ValueError, match="already-constructed"):
                make_backend(backend, weight_arena="shm")
            with pytest.raises(ValueError, match="already-constructed"):
                make_backend(backend, fusion="stacked")
        finally:
            backend.close()

    def test_unknown_modes_rejected(self):
        with pytest.raises(ValueError, match="weight arena"):
            make_backend("persistent", weight_arena="mmap")
        with pytest.raises(ValueError, match="fusion"):
            make_backend("persistent", fusion="fused")

    def test_dispatch_bytes_report_descriptors_not_zero(self):
        """Satellite: arena dispatch reports the descriptor bytes."""

        def cold_bytes(**kwargs):
            sim = make_tiny_simulation(samples_per_client=200)
            sim.set_backend("persistent", max_workers=2, **kwargs)
            weights = sim.server.get_global_weights()
            jobs = [TrainingJob(index=index, weights=weights)
                    for index in sim.client_indices()]
            try:
                cold = sim.backend.dispatch_payload_bytes(sim.clients,
                                                          jobs)
                # The probe only *stages*: the backend still trains and
                # retires generations normally afterwards.
                sim.run_jobs(jobs)
                generations = (sim.backend._arena.generation_count
                               if sim.backend._arena is not None else None)
            finally:
                sim.close()
            return cold, generations

        plain, _ = cold_bytes()
        arena, generations = cold_bytes(weight_arena="shm")
        assert 0 < arena
        assert arena * 10 <= plain
        assert generations == 1

    def test_generations_bounded_across_cycles(self):
        sim = make_tiny_simulation()
        backend = sim.set_backend("persistent", max_workers=2,
                                  weight_arena="shm")
        try:
            for _ in range(4):
                sim.train_clients(sim.client_indices())
                assert backend._arena.generation_count <= 2
        finally:
            sim.close()
        assert backend._arena.generation_count == 0

    def test_close_unlinks_generations(self):
        before = set(shm_arena_files())
        sim = make_tiny_simulation()
        sim.set_backend("persistent", max_workers=2, weight_arena="shm")
        try:
            sim.train_clients(sim.client_indices())
            assert set(shm_arena_files()) - before
        finally:
            sim.close()
        assert set(shm_arena_files()) - before == set()

    def test_killed_worker_failover_bit_identical_and_leak_free(self):
        """SIGKILL mid-run: rebalance heals, /dev/shm ends clean."""
        serial_sim = make_tiny_simulation()
        serial_sim.train_clients(serial_sim.client_indices())
        serial_second = serial_sim.train_clients(
            serial_sim.client_indices())

        before = set(shm_arena_files())
        sim = make_tiny_simulation()
        backend = sim.set_backend("persistent", max_workers=2,
                                  weight_arena="shm", fusion="stacked",
                                  on_shard_failure="rebalance")
        try:
            sim.train_clients(sim.client_indices())
            worker = backend._workers[0]
            worker.process.kill()
            worker.process.join()
            second = sim.train_clients(sim.client_indices())
        finally:
            sim.close()
        assert set(shm_arena_files()) - before == set()
        for expected, actual in zip(serial_second, second):
            assert expected.train_loss == actual.train_loss
            for key in expected.weights:
                np.testing.assert_array_equal(expected.weights[key],
                                              actual.weights[key])

    def test_interpreter_exit_leaves_no_segments_or_warnings(self):
        """Satellite: a run that never calls close() still unlinks its
        generations at interpreter exit, with no resource_tracker
        leak warnings."""
        script = (
            "import sys; sys.path.insert(0, {src!r}); "
            "sys.path.insert(0, {tests_root!r})\n"
            "from tests.conftest import make_tiny_simulation\n"
            "sim = make_tiny_simulation()\n"
            "sim.set_backend('persistent', max_workers=2, "
            "weight_arena='shm', fusion='stacked')\n"
            "sim.train_clients(sim.client_indices())\n"
            "print('TRAINED', flush=True)\n"
        ).format(src=os.path.abspath("src"),
                 tests_root=os.path.abspath("."))
        before = set(shm_arena_files())
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True,
                                timeout=120)
        assert result.returncode == 0, result.stderr
        assert "TRAINED" in result.stdout
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
        assert set(shm_arena_files()) - before == set()
