"""Scenario runner tests: declarative specs, replay, serial identity.

The acceptance criteria of the chaos engine live here: the same
``(seed, spec)`` produces the identical event log twice; under
``rebalance`` the chaos history is bit-identical to the fault-free
serial reference; under ``degrade`` the history records exactly which
clients were dropped per cycle.  The shipped ``examples/scenario_*.json``
specs are validated as part of the suite so CI and docs never drift.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.fl.scenario import (SCENARIO_STRATEGIES, compare_histories,
                               load_spec, run_scenario)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _tiny_spec(**overrides):
    spec = {
        "name": "unit", "seed": 5, "cycles": 2,
        "fleet": {"num_capable": 2, "num_stragglers": 1,
                  "samples_per_client": 24},
        "strategy": {"name": "sync_fl"},
    }
    spec.update(overrides)
    return spec


class TestSpecValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown scenario key "
                                             "'fualts'"):
            run_scenario(_tiny_spec(fualts={}))

    def test_unknown_fleet_key(self):
        spec = _tiny_spec()
        spec["fleet"]["clients"] = 3
        with pytest.raises(ValueError, match="unknown fleet key 'clients'"):
            run_scenario(spec)

    def test_missing_cycles(self):
        spec = _tiny_spec()
        del spec["cycles"]
        with pytest.raises(ValueError, match="needs a 'cycles' count"):
            run_scenario(spec)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown scenario strategy "
                                             "'helios2'"):
            run_scenario(_tiny_spec(strategy={"name": "helios2"}))

    def test_unknown_churn_key(self):
        with pytest.raises(ValueError, match="unknown churn key 'drop'"):
            run_scenario(_tiny_spec(churn=[{"cycle": 1, "drop": [0]}]))

    def test_missing_spec_file(self):
        with pytest.raises(ValueError, match="does not exist"):
            load_spec("/nonexistent/scenario.json")

    def test_strategies_registry_is_complete(self):
        assert set(SCENARIO_STRATEGIES) == {"sync_fl", "async_fl", "afo"}


class TestScenarioDeterminism:
    def test_same_seed_same_event_log_twice(self):
        spec = _tiny_spec(churn=[{"cycle": 2, "leave": [2]}])
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.events == second.events
        assert not compare_histories(first.history, second.history)

    def test_seed_override_changes_the_run(self):
        spec = _tiny_spec()
        base = run_scenario(spec)
        other = run_scenario(spec, seed=99)
        assert other.seed == 99
        assert compare_histories(base.history, other.history)

    def test_event_log_serializes_to_jsonl(self, tmp_path):
        result = run_scenario(_tiny_spec())
        out = tmp_path / "events.jsonl"
        result.write_events(out)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(result.events)
        assert [json.loads(line) for line in lines] == result.events

    def test_churn_applies_and_is_recorded(self):
        spec = _tiny_spec(cycles=3, churn=[
            {"cycle": 2, "leave": [0]},
            {"cycle": 3, "rejoin": [0], "join": 1},
        ])
        result = run_scenario(spec)
        kinds = [(e["cycle"], e["event"]) for e in result.events
                 if e["event"] != "cycle_end"]
        assert kinds == [(2, "client_leave"), (3, "client_rejoin"),
                         (3, "client_join")]
        participants = [r.participating_clients
                        for r in result.history.records]
        assert participants == [3, 2, 4]


class TestExampleSpecs:
    @pytest.mark.parametrize("name", ["scenario_shard_kill.json",
                                      "scenario_degrade.json",
                                      "scenario_flaky_links.json"])
    def test_shipped_specs_parse(self, name):
        spec = load_spec(EXAMPLES / name)
        assert spec["cycles"] >= 1
        assert spec["backend"]["name"] in ("sharded", "persistent")

    def test_shard_kill_example_is_serial_identical(self):
        """The CI chaos-smoke contract: the shipped shard-kill scenario
        recovers under rebalance bit-identically to serial."""
        spec = load_spec(EXAMPLES / "scenario_shard_kill.json")
        chaos = run_scenario(spec)
        assert any(e["event"] == "shard_kill" for e in chaos.events)
        reference = run_scenario(spec, backend_override="serial",
                                 inject=False)
        assert not compare_histories(chaos.history, reference.history)

    def test_degrade_example_audits_dropped_clients(self):
        spec = load_spec(EXAMPLES / "scenario_degrade.json")
        result = run_scenario(spec)
        replay = run_scenario(spec)
        assert result.events == replay.events
        dropped = {r.cycle: r.dropped_clients
                   for r in result.history.records if r.dropped_clients}
        assert dropped  # the kill really degraded a cycle
        # The spec kills slot 1 at cycle 2, before the cycle-3 join: the
        # 4-client fleet minus the dropped set is who participated.
        assert set(dropped) == {2}
        for cycle, clients in dropped.items():
            end = next(e for e in result.events
                       if e["cycle"] == cycle and e["event"] == "cycle_end")
            assert end["dropped_clients"] == list(clients)
            assert end["participants"] == 4 - len(clients)


class TestScenarioCLI:
    def test_cli_runs_and_writes_events(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_tiny_spec()), encoding="utf-8")
        events_path = tmp_path / "events.jsonl"
        code = main(["scenario", "run", str(spec_path),
                     "--events-out", str(events_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario 'unit'" in out
        assert events_path.is_file()

    def test_cli_rejects_degrade_with_assert_serial(self, tmp_path,
                                                    capsys):
        spec = _tiny_spec(backend={"name": "persistent", "workers": 2,
                                   "on_failure": "degrade"})
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        code = main(["scenario", "run", str(spec_path), "--assert-serial"])
        err = capsys.readouterr().err
        assert code == 2
        assert "lossless failure policy" in err

    def test_cli_reports_bad_spec_one_line(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text("{not json", encoding="utf-8")
        code = main(["scenario", "run", str(spec_path)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: scenario spec")
