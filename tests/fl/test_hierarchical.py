"""Integration tests for in-shard hierarchical aggregation.

The contract: with ``aggregation="hierarchical"`` every backend folds
updates slot-locally and ships partial aggregates, yet global weights,
losses and RNG streams stay bit-identical to the flat serial reference —
while upstream (reply) bytes become independent of the fleet size.
"""

import numpy as np
import pytest

from repro.data.synthetic import VirtualClientDatasets
from repro.fl import (AGGREGATION_MODES, ClientConfig, SerialBackend,
                      TrainingSummary, VirtualFleet, make_backend)
from repro.nn import ModelMask

from ..conftest import (FAST_DEVICE, TINY_SPEC, make_tiny_model,
                        make_tiny_simulation)

BACKENDS = ("serial", "thread", "process", "persistent", "sharded")
RESIDENT_BACKENDS = ("persistent", "sharded")


def _draw_masks(sim, rng):
    return {1: ModelMask.random(sim.server.global_model,
                                {"fc1": 0.5, "fc2": 0.5}, rng=rng)}


def _collaborate(backend_name, aggregation, masked, num_cycles=2):
    """Losses + final global weights of one tiny collaboration."""
    sim = make_tiny_simulation()
    sim.set_backend(backend_name, max_workers=2, aggregation=aggregation)
    rng = np.random.default_rng(7)
    losses = []
    try:
        for cycle in range(1, num_cycles + 1):
            masks = _draw_masks(sim, rng) if masked else None
            summaries = sim.train_and_aggregate(
                sim.client_indices(), masks=masks, base_cycle=cycle,
                partial=masked)
            losses.append(tuple(s.train_loss for s in summaries))
        weights = sim.server.get_global_weights()
    finally:
        sim.close()
    return losses, weights


#: Serial flat reference runs, computed once per (masked,) variant.
_REFERENCE = {}


def _reference(masked):
    if masked not in _REFERENCE:
        _REFERENCE[masked] = _collaborate("serial", "flat", masked)
    return _REFERENCE[masked]


class TestAggregationKnob:
    def test_default_is_flat(self):
        assert SerialBackend().aggregation == "flat"
        assert make_backend("serial").aggregation == "flat"

    def test_named_backends_accept_hierarchical(self):
        backend = make_backend("serial", aggregation="hierarchical")
        assert backend.aggregation == "hierarchical"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="aggregation"):
            make_backend("serial", aggregation="tree")
        assert "tree" not in AGGREGATION_MODES

    def test_instance_rejects_aggregation(self):
        backend = SerialBackend()
        with pytest.raises(ValueError, match="aggregation"):
            make_backend(backend, aggregation="hierarchical")

    def test_set_backend_forwards_aggregation(self):
        sim = make_tiny_simulation()
        try:
            sim.set_backend("serial", aggregation="hierarchical")
            assert sim.backend.aggregation == "hierarchical"
        finally:
            sim.close()


class TestTrainAndAggregateParity:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_unmasked_hierarchical_matches_serial_flat(self, backend_name):
        ref_losses, ref_weights = _reference(False)
        losses, weights = _collaborate(backend_name, "hierarchical", False)
        assert losses == ref_losses
        for name in ref_weights:
            np.testing.assert_array_equal(weights[name], ref_weights[name],
                                          err_msg=name)

    @pytest.mark.parametrize("backend_name",
                             ("serial",) + RESIDENT_BACKENDS)
    def test_masked_hierarchical_matches_serial_flat(self, backend_name):
        ref_losses, ref_weights = _reference(True)
        losses, weights = _collaborate(backend_name, "hierarchical", True)
        assert losses == ref_losses
        for name in ref_weights:
            np.testing.assert_array_equal(weights[name], ref_weights[name],
                                          err_msg=name)

    def test_summaries_are_weight_free_updates(self):
        sim = make_tiny_simulation()
        try:
            summaries = sim.train_and_aggregate(sim.client_indices(),
                                                partial=False)
            assert all(isinstance(s, TrainingSummary) for s in summaries)
            assert [s.client_id for s in summaries] == sim.client_indices()
            for index, summary in zip(sim.client_indices(), summaries):
                client = sim.client(index)
                assert summary.client_name == client.name
                assert summary.num_samples == client.num_samples
                assert np.isfinite(summary.train_loss)
        finally:
            sim.close()

    def test_empty_batch_raises(self):
        sim = make_tiny_simulation()
        try:
            with pytest.raises(ValueError):
                sim.train_and_aggregate([])
        finally:
            sim.close()

    def test_hierarchical_advances_server_cycle(self):
        sim = make_tiny_simulation()
        try:
            sim.set_backend("serial", aggregation="hierarchical")
            before = sim.server.current_cycle
            sim.train_and_aggregate(sim.client_indices(), partial=False)
            assert sim.server.current_cycle == before + 1
        finally:
            sim.close()


class TestEmptyBatchShortCircuit:
    """Satellite regression: ``train_clients([])``/``run_jobs([])`` must
    short-circuit identically on all five backends — resident backends
    must not open a wire batch or commit a delta base."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_empty_batch_returns_empty_list(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            assert sim.train_clients([]) == []
            assert sim.run_jobs([]) == []
            assert sim.backend.run_jobs(sim.clients, []) == []
        finally:
            sim.close()

    @pytest.mark.parametrize("backend_name", RESIDENT_BACKENDS)
    def test_empty_batch_opens_no_wire_state(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2)
        try:
            assert sim.backend.run_jobs(sim.clients, []) == []
            # No frame was encoded, no delta base committed, no worker
            # became resident — the next real batch is a cold start.
            assert sim.backend.last_dispatch_bytes == 0
            assert not sim.backend._tx_states
            assert not sim.backend._resident
        finally:
            sim.close()

    @pytest.mark.parametrize("backend_name", RESIDENT_BACKENDS)
    def test_empty_fold_opens_no_wire_state(self, backend_name):
        sim = make_tiny_simulation()
        sim.set_backend(backend_name, max_workers=2,
                        aggregation="hierarchical")
        try:
            partials, summaries = sim.backend.run_fold(
                sim.clients, [], [], structure=sim.server.structure)
            assert partials == [] and summaries == []
            assert sim.backend.last_dispatch_bytes == 0
            assert not sim.backend._tx_states
        finally:
            sim.close()


def _tiny_fleet(num_clients):
    return VirtualFleet(
        num_clients=num_clients,
        dataset_factory=VirtualClientDatasets(TINY_SPEC,
                                              samples_per_client=8, seed=11),
        device=FAST_DEVICE,
        model_factory=make_tiny_model,
        config=ClientConfig(batch_size=8, local_epochs=1, learning_rate=0.1),
        seed=3)


class TestVirtualFleets:
    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            _tiny_fleet(0)
        fleet = _tiny_fleet(4)
        with pytest.raises(IndexError):
            fleet.spec_for(4)
        assert fleet.uniform_factor == 0.25

    def test_spec_for_is_deterministic(self):
        fleet = _tiny_fleet(4)
        first = fleet.spec_for(2)
        second = fleet.spec_for(2)
        assert first.client_id == second.client_id == 2
        np.testing.assert_array_equal(first.dataset.images,
                                      second.dataset.images)

    @pytest.mark.parametrize("backend_name,aggregation", [
        ("serial", "hierarchical"),
        ("persistent", "flat"),
        ("persistent", "hierarchical"),
        ("sharded", "hierarchical"),
    ])
    def test_virtual_cycle_matches_serial_flat(self, backend_name,
                                               aggregation):
        def run(name, mode):
            sim = make_tiny_simulation()
            sim.set_backend(name, max_workers=2, aggregation=mode)
            try:
                outcomes = [sim.run_virtual_cycle(_tiny_fleet(12))
                            for _ in range(2)]
                weights = sim.server.get_global_weights()
            finally:
                sim.close()
            return outcomes, weights

        ref_outcomes, ref_weights = run("serial", "flat")
        outcomes, weights = run(backend_name, aggregation)
        assert outcomes == ref_outcomes
        for name in ref_weights:
            np.testing.assert_array_equal(weights[name], ref_weights[name],
                                          err_msg=name)

    def test_upstream_bytes_independent_of_fleet_size(self):
        """The tentpole property: hierarchical shard->parent bytes do not
        grow with the number of logical clients (flat bytes do)."""
        def reply_bytes(mode, num_clients):
            sim = make_tiny_simulation()
            sim.set_backend("persistent", max_workers=2, aggregation=mode)
            try:
                sim.run_virtual_cycle(_tiny_fleet(num_clients))
                return sim.backend.last_reply_bytes
            finally:
                sim.close()

        hier_small = reply_bytes("hierarchical", 8)
        hier_large = reply_bytes("hierarchical", 32)
        assert hier_small == hier_large
        flat_small = reply_bytes("flat", 8)
        flat_large = reply_bytes("flat", 32)
        assert flat_large > 2 * flat_small
        assert flat_large > 2 * hier_large
