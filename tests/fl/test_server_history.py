"""Tests for the FL server and training history."""

import numpy as np
import pytest

from repro.fl import ClientUpdate, CycleRecord, FLServer, TrainingHistory
from repro.nn import ModelMask

from ..conftest import make_tiny_dataset, make_tiny_model


def make_update(client_id, weights, num_samples=10, mask=None):
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=weights, num_samples=num_samples,
                        train_loss=0.5, mask=mask)


@pytest.fixture
def server():
    return FLServer(make_tiny_model, test_dataset=make_tiny_dataset(50, seed=3))


class TestServer:
    def test_global_weights_roundtrip(self, server):
        weights = server.get_global_weights()
        shifted = {name: value + 1.0 for name, value in weights.items()}
        server.set_global_weights(shifted)
        np.testing.assert_allclose(
            server.get_global_weights()["fc1/weight"],
            shifted["fc1/weight"])

    def test_aggregate_installs_new_weights(self, server):
        weights = server.get_global_weights()
        shifted = {name: value + 2.0 for name, value in weights.items()}
        server.aggregate([make_update(0, shifted)])
        np.testing.assert_allclose(
            server.get_global_weights()["output/weight"],
            shifted["output/weight"])

    def test_aggregate_increments_cycle(self, server):
        weights = server.get_global_weights()
        assert server.current_cycle == 0
        server.aggregate([make_update(0, weights)])
        assert server.current_cycle == 1

    def test_aggregate_empty_raises(self, server):
        with pytest.raises(ValueError):
            server.aggregate([])

    def test_partial_aggregation_keeps_untrained_neurons(self, server):
        global_weights = server.get_global_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        server.aggregate([make_update(0, shifted, mask=mask)], partial=True)
        np.testing.assert_allclose(
            server.get_global_weights()["fc1/weight"],
            global_weights["fc1/weight"])

    def test_force_full_aggregation_ignores_masks(self, server):
        global_weights = server.get_global_weights()
        mask = ModelMask({"fc1": np.zeros(16, dtype=bool),
                          "fc2": np.ones(8, dtype=bool),
                          "output": np.ones(4, dtype=bool)})
        shifted = {name: value + 1.0
                   for name, value in global_weights.items()}
        server.aggregate([make_update(0, shifted, mask=mask)], partial=False)
        np.testing.assert_allclose(
            server.get_global_weights()["fc1/weight"],
            shifted["fc1/weight"])

    def test_evaluate_in_range(self, server):
        accuracy = server.evaluate()
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_without_dataset_raises(self):
        server = FLServer(make_tiny_model)
        with pytest.raises(ValueError):
            server.evaluate()

    def test_num_parameters_matches_model(self, server):
        assert server.num_parameters() == make_tiny_model().num_parameters()


def history_with(accuracies, times=None):
    history = TrainingHistory(strategy_name="test")
    times = times or [float(i + 1) for i in range(len(accuracies))]
    for index, (accuracy, sim_time) in enumerate(zip(accuracies, times)):
        history.append(CycleRecord(cycle=index + 1, sim_time_s=sim_time,
                                   global_accuracy=accuracy,
                                   mean_train_loss=1.0 - accuracy,
                                   participating_clients=4))
    return history


class TestHistory:
    def test_append_enforces_order(self):
        history = history_with([0.1, 0.2])
        with pytest.raises(ValueError):
            history.append(CycleRecord(cycle=1, sim_time_s=3.0,
                                       global_accuracy=0.3,
                                       mean_train_loss=0.7,
                                       participating_clients=4))

    def test_series_accessors(self):
        history = history_with([0.1, 0.5, 0.7])
        assert history.cycles() == [1, 2, 3]
        assert history.accuracies() == [0.1, 0.5, 0.7]
        assert history.times_s() == [1.0, 2.0, 3.0]
        assert len(history) == 3

    def test_final_and_best_accuracy(self):
        history = history_with([0.2, 0.9, 0.8])
        assert history.final_accuracy() == 0.8
        assert history.best_accuracy() == 0.9

    def test_converged_accuracy_uses_tail(self):
        history = history_with([0.0, 0.0, 0.6, 0.8, 1.0])
        np.testing.assert_allclose(history.converged_accuracy(window=3), 0.8)

    def test_cycles_to_accuracy(self):
        history = history_with([0.2, 0.5, 0.9])
        assert history.cycles_to_accuracy(0.5) == 2
        assert history.cycles_to_accuracy(0.95) is None

    def test_time_to_accuracy(self):
        history = history_with([0.2, 0.5, 0.9], times=[10.0, 20.0, 30.0])
        assert history.time_to_accuracy(0.9) == 30.0
        assert history.time_to_accuracy(0.99) is None

    def test_total_time(self):
        history = history_with([0.2, 0.4], times=[5.0, 12.0])
        assert history.total_time() == 12.0

    def test_accuracy_variance_constant_curve_is_zero(self):
        history = history_with([0.5] * 6)
        assert history.accuracy_variance() == 0.0

    def test_accuracy_variance_fluctuating_curve_positive(self):
        history = history_with([0.5, 0.9, 0.5, 0.9, 0.5, 0.9])
        assert history.accuracy_variance() > 0.0

    def test_empty_history_defaults(self):
        history = TrainingHistory(strategy_name="empty")
        assert history.final_accuracy() == 0.0
        assert history.best_accuracy() == 0.0
        assert history.total_time() == 0.0
        assert history.cycles_to_accuracy(0.1) is None

    def test_summary_keys(self):
        summary = history_with([0.3]).summary()
        assert {"strategy", "cycles", "final_accuracy", "best_accuracy",
                "converged_accuracy", "total_time_s"} <= set(summary)
