"""Tests for convergence metrics and text reporting."""

import numpy as np
import pytest

from repro.fl import CycleRecord, TrainingHistory
from repro.metrics import (accuracy_improvement, compare_histories,
                           cycles_speedup, format_accuracy_curves,
                           format_series, format_table, speedup_over,
                           summarize_history)


def history_named(name, accuracies, cycle_seconds=10.0):
    history = TrainingHistory(strategy_name=name)
    for index, accuracy in enumerate(accuracies):
        history.append(CycleRecord(cycle=index + 1,
                                   sim_time_s=cycle_seconds * (index + 1),
                                   global_accuracy=accuracy,
                                   mean_train_loss=1.0 - accuracy,
                                   participating_clients=4))
    return history


class TestSummaries:
    def test_summarize_history_fields(self):
        history = history_named("x", [0.2, 0.5, 0.8])
        summary = summarize_history(history, target_accuracy=0.5)
        assert summary.strategy == "x"
        assert summary.cycles == 3
        assert summary.cycles_to_target == 2
        assert summary.time_to_target_s == 20.0

    def test_summarize_unreached_target(self):
        summary = summarize_history(history_named("x", [0.1, 0.2]), 0.9)
        assert summary.cycles_to_target is None
        assert summary.time_to_target_s is None


class TestSpeedups:
    def test_speedup_over_faster_candidate(self):
        # Candidate reaches 0.8 at t=20, baseline at t=80.
        candidate = history_named("helios", [0.5, 0.8, 0.9], cycle_seconds=10)
        baseline = history_named("sync", [0.5, 0.8, 0.9], cycle_seconds=40)
        assert speedup_over(candidate, baseline, 0.8) == pytest.approx(4.0)

    def test_speedup_none_when_target_unreached(self):
        candidate = history_named("a", [0.1])
        baseline = history_named("b", [0.9])
        assert speedup_over(candidate, baseline, 0.5) is None

    def test_cycles_speedup(self):
        candidate = history_named("a", [0.9, 0.9])
        baseline = history_named("b", [0.1, 0.5, 0.7, 0.9])
        assert cycles_speedup(candidate, baseline, 0.9) == pytest.approx(4.0)

    def test_accuracy_improvement_vs_best(self):
        candidate = history_named("helios", [0.9, 0.9, 0.9])
        baselines = [history_named("a", [0.8, 0.8, 0.8]),
                     history_named("b", [0.7, 0.7, 0.7])]
        improvement = accuracy_improvement(candidate, baselines)
        assert improvement == pytest.approx(10.0)

    def test_accuracy_improvement_vs_mean(self):
        candidate = history_named("helios", [0.9] * 3)
        baselines = [history_named("a", [0.8] * 3),
                     history_named("b", [0.6] * 3)]
        improvement = accuracy_improvement(candidate, baselines,
                                           use_best=False)
        assert improvement == pytest.approx(20.0)

    def test_accuracy_improvement_requires_baselines(self):
        with pytest.raises(ValueError):
            accuracy_improvement(history_named("x", [0.5]), [])

    def test_compare_histories_sorted_by_accuracy(self):
        rows = compare_histories({
            "low": history_named("low", [0.3] * 3),
            "high": history_named("high", [0.9] * 3),
        }, target_accuracy=0.5)
        assert rows[0]["strategy"] == "high"
        assert rows[1]["strategy"] == "low"


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 222, "b": None}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series([1, 2], [0.5, 0.75], x_label="cycle",
                             y_label="acc")
        assert "cycle" in text
        assert "0.75" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [0.5])

    def test_format_accuracy_curves_pads_short_series(self):
        text = format_accuracy_curves({"a": [0.1, 0.2, 0.3], "b": [0.5]})
        lines = text.splitlines()
        # Header + separator + 3 data rows.
        assert len(lines) == 5

    def test_format_accuracy_curves_empty(self):
        assert "(no curves)" in format_accuracy_curves({})
