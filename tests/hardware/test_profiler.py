"""Tests for the fleet profiler (white-box and black-box paths)."""

import numpy as np
import pytest

from repro.hardware import FleetProfiler, table1_stragglers

from ..conftest import FAST_DEVICE, SLOW_DEVICE, make_tiny_model


@pytest.fixture
def profiler():
    return FleetProfiler(make_tiny_model(), (1, 8, 8),
                         samples_per_cycle=2000, batch_size=20)


class TestWhiteBox:
    def test_report_fields(self, profiler):
        report = profiler.profile_device(SLOW_DEVICE)
        assert report.workload_gflops > 0
        assert report.memory_mb > 0
        assert report.cycle_minutes > 0

    def test_fleet_report_length(self, profiler):
        reports = profiler.profile_fleet([FAST_DEVICE, SLOW_DEVICE])
        assert len(reports) == 2

    def test_straggler_slower_than_capable(self, profiler):
        fast, slow = profiler.profile_fleet([FAST_DEVICE, SLOW_DEVICE])
        assert slow.cycle_minutes > fast.cycle_minutes

    def test_as_row_keys(self, profiler):
        row = profiler.profile_device(SLOW_DEVICE).as_row()
        assert set(row) == {"device", "workload_gflops", "memory_mb",
                            "cycle_minutes"}

    def test_table1_ordering(self, profiler):
        """The four paper presets must profile in the paper's time order."""
        reports = profiler.profile_fleet(table1_stragglers())
        minutes = [report.cycle_minutes for report in reports]
        assert minutes == sorted(minutes)

    def test_shrunk_profile_is_cheaper(self, profiler):
        model = profiler.cost_model.model
        fractions = {layer.name: 0.25 for layer in model.neuron_layers()}
        full = profiler.profile_device(SLOW_DEVICE)
        shrunk = profiler.profile_device(SLOW_DEVICE, fractions)
        assert shrunk.cycle_minutes < full.cycle_minutes


class TestBlackBox:
    def test_measurements_keyed_by_name(self, profiler):
        measurements = profiler.measure_test_bench(
            [FAST_DEVICE, SLOW_DEVICE], rng=np.random.default_rng(0))
        assert set(measurements) == {FAST_DEVICE.name, SLOW_DEVICE.name}

    def test_measurements_reflect_speed(self, profiler):
        measurements = profiler.measure_test_bench(
            [FAST_DEVICE, SLOW_DEVICE], noise_std=0.0)
        assert measurements[SLOW_DEVICE.name] > measurements[FAST_DEVICE.name]

    def test_bench_fraction_scales_measurement(self, profiler):
        small = profiler.measure_test_bench([SLOW_DEVICE], bench_fraction=0.01,
                                            noise_std=0.0)
        large = profiler.measure_test_bench([SLOW_DEVICE], bench_fraction=0.1,
                                            noise_std=0.0)
        np.testing.assert_allclose(large[SLOW_DEVICE.name],
                                   10 * small[SLOW_DEVICE.name], rtol=1e-6)

    def test_noise_changes_measurements(self, profiler):
        a = profiler.measure_test_bench([SLOW_DEVICE],
                                        rng=np.random.default_rng(1))
        b = profiler.measure_test_bench([SLOW_DEVICE],
                                        rng=np.random.default_rng(2))
        assert a[SLOW_DEVICE.name] != b[SLOW_DEVICE.name]

    def test_invalid_arguments(self, profiler):
        with pytest.raises(ValueError):
            profiler.measure_test_bench([SLOW_DEVICE], bench_fraction=0.0)
        with pytest.raises(ValueError):
            profiler.measure_test_bench([SLOW_DEVICE], noise_std=-1.0)
