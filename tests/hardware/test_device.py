"""Tests for device profiles and presets."""

import pytest

from repro.hardware import (DEEPLENS_CPU, DEEPLENS_GPU, DEVICE_PRESETS,
                            DeviceProfile, JETSON_NANO_CPU, JETSON_NANO_GPU,
                            RASPBERRY_PI_4, available_devices, build_fleet,
                            get_device, table1_stragglers)


class TestDeviceProfile:
    def test_unit_conversions(self):
        device = DeviceProfile("d", compute_gflops=2.0,
                               memory_bandwidth_gbps=4.0,
                               network_bandwidth_mbps=80.0,
                               memory_capacity_mb=512.0)
        assert device.compute_flops_per_second == 2.0e9
        assert device.memory_bytes_per_second == 4.0e9
        assert device.network_bytes_per_second == 10.0e6

    def test_rejects_nonpositive_resources(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", compute_gflops=0.0,
                          memory_bandwidth_gbps=1.0,
                          network_bandwidth_mbps=1.0,
                          memory_capacity_mb=1.0)

    def test_scaled_profile(self):
        scaled = JETSON_NANO_GPU.scaled(compute=0.5, name="half")
        assert scaled.name == "half"
        assert scaled.compute_gflops == JETSON_NANO_GPU.compute_gflops * 0.5
        # Original is untouched (frozen dataclass).
        assert JETSON_NANO_GPU.compute_gflops == 230.0

    def test_as_dict_keys(self):
        keys = set(RASPBERRY_PI_4.as_dict())
        assert keys == {"compute_gflops", "memory_bandwidth_gbps",
                        "network_bandwidth_mbps", "memory_capacity_mb"}


class TestPresets:
    def test_five_presets(self):
        assert len(DEVICE_PRESETS) == 5
        assert set(available_devices()) == set(DEVICE_PRESETS)

    def test_get_device(self):
        assert get_device("jetson-nano-gpu") is JETSON_NANO_GPU
        with pytest.raises(KeyError):
            get_device("tpu-pod")

    def test_capable_device_is_fastest(self):
        others = [JETSON_NANO_CPU, RASPBERRY_PI_4, DEEPLENS_GPU, DEEPLENS_CPU]
        assert all(JETSON_NANO_GPU.compute_gflops > device.compute_gflops
                   for device in others)

    def test_table1_straggler_order(self):
        names = [device.name for device in table1_stragglers()]
        assert names == ["jetson-nano-cpu", "raspberry-pi-4", "deeplens-gpu",
                         "deeplens-cpu"]

    def test_table1_compute_ordering_matches_paper_times(self):
        # Slower compute must correspond to the paper's longer cycle times.
        stragglers = table1_stragglers()
        computes = [device.compute_gflops for device in stragglers]
        assert computes == sorted(computes, reverse=True)


class TestBuildFleet:
    def test_counts(self):
        fleet = build_fleet(2, 3)
        assert len(fleet) == 5

    def test_names_are_unique(self):
        fleet = build_fleet(3, 4)
        assert len({device.name for device in fleet}) == 7

    def test_capable_devices_are_jetson_gpu_class(self):
        fleet = build_fleet(2, 1)
        assert fleet[0].compute_gflops == JETSON_NANO_GPU.compute_gflops

    def test_straggler_cycle_through_presets(self):
        fleet = build_fleet(0, 5)
        # The fifth straggler wraps around to the first preset.
        assert fleet[4].compute_gflops == fleet[0].compute_gflops

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            build_fleet(-1, 2)
