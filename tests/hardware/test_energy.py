"""Tests for the per-cycle energy model."""

import pytest

from repro.hardware import JETSON_NANO_GPU, DEEPLENS_CPU, TrainingCostModel
from repro.hardware.energy import (DEFAULT_POWER_PROFILES, DevicePowerProfile,
                                   EnergyModel)

from ..conftest import SLOW_DEVICE, make_tiny_model


@pytest.fixture
def cost_model():
    return TrainingCostModel(make_tiny_model(), (1, 8, 8),
                             samples_per_cycle=5000, batch_size=20)


@pytest.fixture
def energy_model():
    return EnergyModel()


class TestPowerProfiles:
    def test_defaults_cover_all_presets(self):
        assert set(DEFAULT_POWER_PROFILES) == {
            "jetson-nano-gpu", "jetson-nano-cpu", "raspberry-pi-4",
            "deeplens-gpu", "deeplens-cpu"}

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DevicePowerProfile(compute_watts=-1.0, radio_watts=1.0,
                               idle_watts=1.0)

    def test_exact_lookup(self, energy_model):
        profile = energy_model.power_profile_for(JETSON_NANO_GPU)
        assert profile is DEFAULT_POWER_PROFILES["jetson-nano-gpu"]

    def test_prefix_lookup_for_scaled_devices(self, energy_model):
        scaled = DEEPLENS_CPU.scaled(name="deeplens-cpu-scaled")
        profile = energy_model.power_profile_for(scaled)
        assert profile is DEFAULT_POWER_PROFILES["deeplens-cpu"]

    def test_unknown_device_gets_fallback(self, energy_model):
        profile = energy_model.power_profile_for(SLOW_DEVICE)
        assert profile.compute_watts > 0

    def test_custom_profile_overrides_default(self):
        custom = DevicePowerProfile(compute_watts=1.0, radio_watts=0.1,
                                    idle_watts=0.1)
        model = EnergyModel({"jetson-nano-gpu": custom})
        assert model.power_profile_for(JETSON_NANO_GPU) is custom


class TestEnergyEstimates:
    def test_breakdown_sums(self, cost_model, energy_model):
        cost = cost_model.estimate(DEEPLENS_CPU)
        estimate = energy_model.estimate_cycle(DEEPLENS_CPU, cost)
        assert estimate.total_joules == pytest.approx(
            estimate.compute_joules + estimate.communication_joules
            + estimate.idle_joules)
        assert estimate.idle_joules == 0.0

    def test_idle_energy_charged_for_waiting(self, cost_model, energy_model):
        cost = cost_model.estimate(JETSON_NANO_GPU)
        waiting = energy_model.estimate_cycle(
            JETSON_NANO_GPU, cost, cycle_length_s=cost.total_seconds * 100)
        busy_only = energy_model.estimate_cycle(JETSON_NANO_GPU, cost)
        assert waiting.idle_joules > 0
        assert waiting.total_joules > busy_only.total_joules

    def test_negative_cycle_length_rejected(self, cost_model, energy_model):
        cost = cost_model.estimate(JETSON_NANO_GPU)
        with pytest.raises(ValueError):
            energy_model.estimate_cycle(JETSON_NANO_GPU, cost,
                                        cycle_length_s=-1.0)

    def test_shrunk_model_uses_less_energy(self, cost_model, energy_model):
        model = cost_model.model
        fractions = {layer.name: 0.25 for layer in model.neuron_layers()}
        full = energy_model.estimate_cycle(DEEPLENS_CPU,
                                           cost_model.estimate(DEEPLENS_CPU))
        shrunk = energy_model.estimate_cycle(
            DEEPLENS_CPU, cost_model.estimate(DEEPLENS_CPU, fractions))
        assert shrunk.active_joules < full.active_joules

    def test_milliwatt_hours_conversion(self, cost_model, energy_model):
        cost = cost_model.estimate(DEEPLENS_CPU)
        estimate = energy_model.estimate_cycle(DEEPLENS_CPU, cost)
        assert estimate.total_milliwatt_hours == pytest.approx(
            estimate.total_joules / 3.6)

    def test_sustainable_cycles_positive_and_monotone(self, cost_model,
                                                      energy_model):
        cost = cost_model.estimate(DEEPLENS_CPU)
        estimate = energy_model.estimate_cycle(DEEPLENS_CPU, cost)
        cycles = energy_model.sustainable_cycles(DEEPLENS_CPU, estimate)
        assert cycles > 0
        # A device with a larger battery sustains more cycles.
        bigger_battery = DEEPLENS_CPU.scaled(name="big-battery")
        object.__setattr__  # frozen dataclass: use replace-style scaling
        from dataclasses import replace
        roomier = replace(DEEPLENS_CPU, name="roomier",
                          battery_mwh=DEEPLENS_CPU.battery_mwh * 2)
        assert energy_model.sustainable_cycles(roomier, estimate) > cycles
