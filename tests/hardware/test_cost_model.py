"""Tests for the analytical training-cost model (Te = W/C + M/V + M/B)."""

import numpy as np
import pytest

from repro.hardware import CommunicationModel, TrainingCostModel

from ..conftest import FAST_DEVICE, SLOW_DEVICE, make_device, make_tiny_model


@pytest.fixture
def cost_model():
    return TrainingCostModel(make_tiny_model(), (1, 8, 8),
                             samples_per_cycle=1000, batch_size=20)


class TestEstimate:
    def test_breakdown_sums_to_total(self, cost_model):
        estimate = cost_model.estimate(SLOW_DEVICE)
        np.testing.assert_allclose(
            estimate.total_seconds,
            estimate.compute_seconds + estimate.memory_seconds
            + estimate.communication_seconds)

    def test_slower_device_takes_longer(self, cost_model):
        fast = cost_model.estimate(FAST_DEVICE)
        slow = cost_model.estimate(SLOW_DEVICE)
        assert slow.total_seconds > fast.total_seconds

    def test_compute_term_formula(self, cost_model):
        estimate = cost_model.estimate(FAST_DEVICE)
        expected = (cost_model.full_model_cost.training_flops * 1000
                    / FAST_DEVICE.compute_flops_per_second)
        np.testing.assert_allclose(estimate.compute_seconds, expected)

    def test_workload_scales_with_samples(self):
        small = TrainingCostModel(make_tiny_model(), (1, 8, 8),
                                  samples_per_cycle=100)
        large = TrainingCostModel(make_tiny_model(), (1, 8, 8),
                                  samples_per_cycle=1000)
        np.testing.assert_allclose(large.workload_gflops(),
                                   10 * small.workload_gflops())

    def test_minutes_conversion(self, cost_model):
        estimate = cost_model.estimate(SLOW_DEVICE)
        np.testing.assert_allclose(estimate.total_minutes,
                                   estimate.total_seconds / 60.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TrainingCostModel(make_tiny_model(), (1, 8, 8),
                              samples_per_cycle=0)
        with pytest.raises(ValueError):
            TrainingCostModel(make_tiny_model(), (1, 8, 8),
                              samples_per_cycle=10, batch_size=0)


class TestShrunkModels:
    def test_shrunk_model_is_cheaper(self, cost_model):
        model = cost_model.model
        fractions = {layer.name: 0.3 for layer in model.neuron_layers()}
        full = cost_model.estimate(SLOW_DEVICE)
        shrunk = cost_model.estimate(SLOW_DEVICE, fractions)
        assert shrunk.total_seconds < full.total_seconds
        assert shrunk.workload_gflops < full.workload_gflops

    def test_memory_shrinks_with_volume(self, cost_model):
        model = cost_model.model
        fractions = {layer.name: 0.3 for layer in model.neuron_layers()}
        assert (cost_model.memory_megabytes(fractions)
                < cost_model.memory_megabytes())

    def test_fits_in_memory(self, cost_model):
        roomy = make_device("roomy", memory=100000.0)
        cramped = make_device("cramped", memory=1e-6)
        assert cost_model.fits_in_memory(roomy)
        assert not cost_model.fits_in_memory(cramped)


class TestVolumeForBudget:
    def test_full_volume_when_budget_is_loose(self, cost_model):
        generous = cost_model.estimate(SLOW_DEVICE).total_seconds * 10
        assert cost_model.volume_for_budget(SLOW_DEVICE, generous) == 1.0

    def test_min_fraction_when_budget_is_tight(self, cost_model):
        tiny_budget = 1e-9
        volume = cost_model.volume_for_budget(SLOW_DEVICE, tiny_budget,
                                              min_fraction=0.2)
        assert volume == pytest.approx(0.2)

    def test_volume_meets_budget(self, cost_model):
        full_time = cost_model.estimate(SLOW_DEVICE).total_seconds
        budget = full_time / 3.0
        volume = cost_model.volume_for_budget(SLOW_DEVICE, budget,
                                              min_fraction=0.05)
        fractions = {layer.name: volume
                     for layer in cost_model.model.neuron_layers()}
        achieved = cost_model.estimate(SLOW_DEVICE, fractions).total_seconds
        assert achieved <= budget * 1.05

    def test_volume_is_monotone_in_budget(self, cost_model):
        full_time = cost_model.estimate(SLOW_DEVICE).total_seconds
        tight = cost_model.volume_for_budget(SLOW_DEVICE, full_time / 5)
        loose = cost_model.volume_for_budget(SLOW_DEVICE, full_time / 2)
        assert tight <= loose

    def test_invalid_budget(self, cost_model):
        with pytest.raises(ValueError):
            cost_model.volume_for_budget(SLOW_DEVICE, 0.0)


class TestCommunicationModel:
    def test_transfer_time_scales_with_payload(self):
        comm = CommunicationModel(per_message_latency_s=0.0)
        small = comm.transfer_seconds(FAST_DEVICE, 1000)
        large = comm.transfer_seconds(FAST_DEVICE, 100000)
        assert large > small

    def test_latency_floor(self):
        comm = CommunicationModel(per_message_latency_s=0.5)
        assert comm.transfer_seconds(FAST_DEVICE, 0) == pytest.approx(0.5)

    def test_server_bandwidth_caps_fast_devices(self):
        comm = CommunicationModel(per_message_latency_s=0.0,
                                  server_bandwidth_mbps=1.0)
        fast = make_device("f", network=10000.0)
        slow_transfer = comm.transfer_seconds(fast, 1_000_000)
        uncapped = CommunicationModel(per_message_latency_s=0.0,
                                      server_bandwidth_mbps=1e6)
        assert slow_transfer > uncapped.transfer_seconds(fast, 1_000_000)

    def test_round_trip_is_sum(self):
        comm = CommunicationModel()
        up = comm.transfer_seconds(SLOW_DEVICE, 5000)
        down = comm.transfer_seconds(SLOW_DEVICE, 7000)
        np.testing.assert_allclose(
            comm.round_trip_seconds(SLOW_DEVICE, 5000, 7000), up + down)

    def test_negative_payload_raises(self):
        with pytest.raises(ValueError):
            CommunicationModel().transfer_seconds(SLOW_DEVICE, -1)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            CommunicationModel(per_message_latency_s=-0.1)
        with pytest.raises(ValueError):
            CommunicationModel(server_bandwidth_mbps=0.0)
