"""Tests for experiment-result persistence."""

import os

import numpy as np
import pytest

from repro.experiments import (history_from_dict, history_to_dict,
                               load_histories, save_histories)
from repro.fl import CycleRecord, TrainingHistory


def sample_history(name="Helios", cycles=4):
    history = TrainingHistory(strategy_name=name)
    for index in range(cycles):
        history.append(CycleRecord(
            cycle=index + 1, sim_time_s=10.0 * (index + 1),
            global_accuracy=0.2 * (index + 1),
            mean_train_loss=1.0 / (index + 1),
            participating_clients=4,
            straggler_fraction_trained=0.4,
            extra={"capable_pace_s": 3.0}))
    return history


class TestDictRoundtrip:
    def test_roundtrip_preserves_records(self):
        original = sample_history()
        rebuilt = history_from_dict(history_to_dict(original))
        assert rebuilt.strategy_name == original.strategy_name
        assert rebuilt.cycles() == original.cycles()
        np.testing.assert_allclose(rebuilt.accuracies(),
                                   original.accuracies())
        np.testing.assert_allclose(rebuilt.times_s(), original.times_s())

    def test_roundtrip_preserves_extra(self):
        rebuilt = history_from_dict(history_to_dict(sample_history()))
        assert rebuilt.records[0].extra == {"capable_pace_s": 3.0}

    def test_empty_history(self):
        rebuilt = history_from_dict(history_to_dict(
            TrainingHistory(strategy_name="empty")))
        assert len(rebuilt) == 0
        assert rebuilt.strategy_name == "empty"


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        histories = {"Helios": sample_history("Helios"),
                     "Syn. FL": sample_history("Syn. FL", cycles=2)}
        path = os.path.join(tmp_path, "run", "histories.json")
        save_histories(histories, path)
        loaded = load_histories(path)
        assert set(loaded) == {"Helios", "Syn. FL"}
        assert len(loaded["Syn. FL"]) == 2
        np.testing.assert_allclose(loaded["Helios"].accuracies(),
                                   histories["Helios"].accuracies())

    def test_json_is_human_readable(self, tmp_path):
        path = os.path.join(tmp_path, "histories.json")
        save_histories({"Helios": sample_history()}, path)
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert "global_accuracy" in content
        assert "Helios" in content

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_histories(os.path.join(tmp_path, "nope.json"))
