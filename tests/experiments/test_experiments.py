"""Smoke and structure tests for the experiment runners (smoke scale)."""

import pytest

from repro.experiments import (DATASET_MODEL, SCALES, ExperimentSetting,
                               available_experiments, get_experiment,
                               get_scale, make_simulation_factory,
                               run_experiment, run_fig1, run_fig5_panel,
                               run_fig6, run_table1)
from repro.experiments.fig5_effectiveness import make_fig5_strategies
from repro.experiments.headline import summarize_headline
from repro.experiments.fig5_effectiveness import Fig5PanelResult, Fig5Result


class TestScalesAndSettings:
    def test_three_scales(self):
        assert set(SCALES) == {"smoke", "fast", "full"}

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_dataset_model_pairing_matches_paper(self):
        assert DATASET_MODEL == {"mnist": "lenet", "cifar10": "alexnet",
                                 "cifar100": "resnet"}

    def test_setting_label_and_counts(self):
        setting = ExperimentSetting(dataset="mnist", model="lenet",
                                    num_capable=2, num_stragglers=3)
        assert setting.num_clients == 5
        assert "3strag" in setting.label

    def test_simulation_factory_produces_fresh_sims(self):
        setting = ExperimentSetting(dataset="mnist", model="lenet",
                                    num_capable=1, num_stragglers=1)
        factory, num_cycles = make_simulation_factory(setting,
                                                      get_scale("smoke"))
        sim_a, sim_b = factory(), factory()
        assert num_cycles >= 2
        assert sim_a is not sim_b
        assert sim_a.num_clients() == 2


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(available_experiments()) == {
            "fig1", "fig2", "fig5", "fig6", "fig7", "headline", "table1"}

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_entries_have_descriptions(self):
        for identifier in available_experiments():
            assert get_experiment(identifier).description


class TestProfilingExperiments:
    def test_table1_rows_and_ordering(self):
        result = run_table1(scale="smoke")
        assert len(result.rows) == 4
        assert result.ordering_matches_paper
        minutes = [row["cycle_minutes"] for row in result.rows]
        assert minutes == sorted(minutes)

    def test_table1_formatted_output(self):
        _, text = run_experiment("table1", scale="smoke")
        assert "Table I" in text
        assert "deeplens-cpu" in text

    def test_fig1_idle_time_structure(self):
        result = run_fig1(scale="smoke")
        assert len(result.rows) == 3
        assert result.slowdown_factor > 5.0
        # The straggler itself has no idle time.
        straggler_row = [row for row in result.rows
                         if row["device"] == result.straggler_name][0]
        assert straggler_row["idle_hours"] == 0.0


class TestTrainingExperiments:
    def test_fig5_panel_smoke(self):
        panel = run_fig5_panel("mnist", num_capable=1, num_stragglers=1,
                               scale="smoke")
        assert set(panel.histories) == {"Asyn. FL", "AFO", "Syn. FL",
                                        "Random", "Helios"}
        assert len(panel.rows) == 5
        assert panel.target_accuracy > 0

    def test_fig5_strategy_names(self):
        names = [strategy.name for strategy in make_fig5_strategies(2)]
        assert names == ["Asyn. FL", "AFO", "Syn. FL", "Random", "Helios"]

    def test_fig6_smoke(self):
        result = run_fig6(datasets=("mnist",), straggler_counts=(1,),
                          num_capable=1, scale="smoke")
        assert len(result.panels) == 1
        rows = result.rows()
        assert rows[0]["stragglers"] == 1
        assert 0.0 <= rows[0]["helios_acc"] <= 1.0

    def test_headline_summary_from_synthetic_panels(self):
        from repro.fl import CycleRecord, TrainingHistory

        def history(name, accuracy, seconds):
            run = TrainingHistory(strategy_name=name)
            run.append(CycleRecord(cycle=1, sim_time_s=seconds,
                                   global_accuracy=accuracy,
                                   mean_train_loss=0.1,
                                   participating_clients=4))
            return run

        panel = Fig5PanelResult(
            setting_label="synthetic",
            histories={"Helios": history("Helios", 0.9, 10.0),
                       "Syn. FL": history("Syn. FL", 0.88, 30.0)},
            rows=[], helios_speedup_vs_sync=3.0,
            helios_accuracy_improvement_pp=2.0, target_accuracy=0.8)
        result = summarize_headline(Fig5Result(panels=[panel]))
        assert result.max_speedup == 3.0
        assert result.max_accuracy_gain_pp == 2.0
        assert len(result.per_panel) == 1
