"""Tests for the experiment result formatters (text rendering)."""

import pytest

from repro.experiments.fig1_motivation import Fig1Result, format_fig1
from repro.experiments.fig2_async_analysis import Fig2Result, format_fig2
from repro.experiments.fig5_effectiveness import (Fig5PanelResult, Fig5Result,
                                                  format_fig5)
from repro.experiments.fig6_aggregation_opt import (Fig6PanelResult,
                                                    Fig6Result, format_fig6)
from repro.experiments.fig7_non_iid import (Fig7PanelResult, Fig7Result,
                                            format_fig7)
from repro.experiments.headline import HeadlineResult, format_headline
from repro.experiments.table1_profiles import Table1Result, format_table1
from repro.fl import CycleRecord, TrainingHistory


def history(name, accuracies):
    run = TrainingHistory(strategy_name=name)
    for index, accuracy in enumerate(accuracies):
        run.append(CycleRecord(cycle=index + 1, sim_time_s=float(index + 1),
                               global_accuracy=accuracy,
                               mean_train_loss=1.0 - accuracy,
                               participating_clients=4))
    return run


class TestProfilingFormatters:
    def test_format_fig1(self):
        result = Fig1Result(
            rows=[{"device": "a", "training_hours": 0.1, "idle_hours": 0.3,
                   "idle_share": 0.75},
                  {"device": "b", "training_hours": 0.4, "idle_hours": 0.0,
                   "idle_share": 0.0}],
            cycle_hours=0.4, straggler_name="b", slowdown_factor=4.0)
        text = format_fig1(result)
        assert "Fig. 1" in text
        assert "straggler: b" in text
        assert "4.0x" in text

    def test_format_table1(self):
        result = Table1Result(
            rows=[{"device": "x", "workload_gflops": 1.0, "memory_mb": 2.0,
                   "cycle_minutes": 3.0}],
            paper_rows=[{"device": "x", "workload_gflops": 7.0,
                         "memory_mb": 252.0, "cycle_minutes": 20.6}],
            ordering_matches_paper=True)
        text = format_table1(result)
        assert "measured" in text
        assert "paper-reported" in text
        assert "True" in text


class TestTrainingFormatters:
    def test_format_fig2(self):
        result = Fig2Result(
            histories={"Setting 1 (Syn.)": history("s1", [0.5, 0.8])},
            rows=[{"setting": "Setting 1 (Syn.)", "converge_accuracy": 0.8,
                   "best_accuracy": 0.8, "converge_time_min": 1.0}])
        text = format_fig2(result)
        assert "Fig. 2" in text
        assert "Setting 1 (Syn.)" in text

    def test_format_fig5(self):
        panel = Fig5PanelResult(
            setting_label="lenet-mnist-demo",
            histories={"Helios": history("Helios", [0.5, 0.9]),
                       "Syn. FL": history("Syn. FL", [0.6, 0.88])},
            rows=[{"strategy": "Helios", "converged_accuracy": 0.9}],
            helios_speedup_vs_sync=2.0,
            helios_accuracy_improvement_pp=1.5,
            target_accuracy=0.8)
        text = format_fig5(Fig5Result(panels=[panel]))
        assert "lenet-mnist-demo" in text
        assert "2.00x" in text
        assert "+1.50 pp" in text

    def test_format_fig6(self):
        panel = Fig6PanelResult(
            dataset="mnist", num_stragglers=2,
            histories={"Helios": history("Helios", [0.9]),
                       "S.T. Only": history("S.T. Only", [0.85])},
            helios_accuracy=0.9, st_only_accuracy=0.85,
            helios_variance=0.001, st_only_variance=0.002)
        text = format_fig6(Fig6Result(panels=[panel]))
        assert "Fig. 6" in text
        assert "2 straggler(s)" in text
        assert panel.accuracy_improvement_pp == pytest.approx(5.0)

    def test_format_fig7(self):
        panel = Fig7PanelResult(
            setting_label="mnist-noniid",
            histories={"Helios": history("Helios", [0.4, 0.6])},
            rows=[{"strategy": "Helios", "converged_accuracy": 0.6}],
            helios_is_best=True)
        text = format_fig7(Fig7Result(panels=[panel]))
        assert "Non-IID" in text
        assert "mnist-noniid" in text

    def test_format_headline(self):
        result = HeadlineResult(
            per_panel=[{"setting": "s", "helios_speedup_vs_sync": 2.1,
                        "helios_accuracy_gain_pp": 3.0}],
            max_speedup=2.1, max_accuracy_gain_pp=3.0)
        text = format_headline(result)
        assert "2.10x" in text
        assert "+3.00 pp" in text
        assert "2.5x" in text  # the paper reference value
