"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == "fast"
        assert args.seed == 0
        assert args.output is None

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--scale", "smoke", "--seed", "3",
             "--output", "out.txt"])
        assert args.scale == "smoke"
        assert args.seed == 3
        assert args.output == "out.txt"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--scale", "huge"])

    def test_shard_worker_command_parses(self):
        args = build_parser().parse_args(["shard-worker", "--port", "7600"])
        assert args.command == "shard-worker"
        assert args.host == "127.0.0.1"
        assert args.port == 7600
        assert args.max_sessions is None
        assert args.read_deadline is None

    def test_shard_worker_accepts_session_flags(self):
        args = build_parser().parse_args(
            ["shard-worker", "--max-sessions", "3",
             "--read-deadline", "30"])
        assert args.max_sessions == 3
        assert args.read_deadline == 30.0

    def test_shard_worker_rejects_bad_session_flags(self, capsys):
        assert main(["shard-worker", "--max-sessions", "0"]) == 2
        assert "--max-sessions" in capsys.readouterr().err
        assert main(["shard-worker", "--read-deadline", "0"]) == 2
        assert "--read-deadline" in capsys.readouterr().err

    def test_run_accepts_shards(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--backend", "sharded",
             "--shards", "node-a:7600,node-b:7600"])
        assert args.backend == "sharded"
        assert args.shards == "node-a:7600,node-b:7600"

    def test_run_accepts_failure_policy_flags(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--backend", "sharded", "--workers", "3",
             "--on-shard-failure", "rebalance",
             "--heartbeat-interval", "10"])
        assert args.on_shard_failure == "rebalance"
        assert args.heartbeat_interval == 10.0

    def test_failure_policy_defaults_off(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.on_shard_failure is None
        assert args.heartbeat_interval is None

    def test_invalid_failure_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig6", "--backend", "sharded",
                 "--on-shard-failure", "retry-forever"])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in ("fig1", "fig2", "fig5", "fig6", "fig7", "table1",
                           "headline"):
            assert identifier in output

    def test_scales_prints_presets(self, capsys):
        assert main(["scales"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output and "fast" in output and "full" in output

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_backend_flag_warns_on_profiling_experiment(self, capsys):
        """table1 runs no trainings: the flags must not vanish silently."""
        assert main(["run", "table1", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "2"]) == 0
        err = capsys.readouterr().err.lower()
        assert "warning" in err and "--backend" in err

    def test_workers_with_serial_backend_warns(self, capsys):
        assert main(["run", "table1", "--scale", "smoke",
                     "--workers", "4"]) == 0
        err = capsys.readouterr().err.lower()
        assert "warning" in err and "--workers" in err

    def test_run_table1_smoke(self, capsys, tmp_path):
        output_file = os.path.join(tmp_path, "table1.txt")
        code = main(["run", "table1", "--scale", "smoke",
                     "--output", output_file])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Table I" in printed
        with open(output_file, encoding="utf-8") as handle:
            assert "Table I" in handle.read()

    def test_run_fig1_smoke(self, capsys):
        assert main(["run", "fig1", "--scale", "smoke"]) == 0
        assert "idle" in capsys.readouterr().out.lower()

    def test_shards_without_sharded_backend_fails(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--shards", "localhost:7600"]) == 2
        assert "--backend sharded" in capsys.readouterr().err

    def test_on_shard_failure_requires_resident_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--on-shard-failure", "rebalance"]) == 2
        assert "--on-shard-failure" in capsys.readouterr().err
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "thread",
                     "--on-shard-failure", "rebalance"]) == 2
        assert "--on-shard-failure" in capsys.readouterr().err

    def test_heartbeat_interval_requires_sharded_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "2",
                     "--heartbeat-interval", "5"]) == 2
        assert "--heartbeat-interval" in capsys.readouterr().err

    def test_run_fig6_sharded_smoke(self, capsys):
        """CLI-level wiring: fig6 on two auto-spawned localhost shards."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--workers", "2"]) == 0
        assert "cycle" in capsys.readouterr().out.lower()

    def test_run_fig6_sharded_rebalance_smoke(self, capsys):
        """CLI-level wiring of the fault-tolerance flags end to end."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--workers", "2",
                     "--on-shard-failure", "rebalance",
                     "--heartbeat-interval", "30"]) == 0
        assert "cycle" in capsys.readouterr().out.lower()


class TestArgumentValidation:
    """Malformed values must die with a one-line error, not a traceback
    deep inside pool construction or a socket connect."""

    def test_zero_workers_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "0"]) == 2
        assert "--workers must be positive" in capsys.readouterr().err

    def test_negative_workers_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "thread", "--workers", "-3"]) == 2
        assert "--workers must be positive" in capsys.readouterr().err

    def test_zero_heartbeat_interval_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--workers", "2",
                     "--heartbeat-interval", "0"]) == 2
        assert ("--heartbeat-interval must be positive"
                in capsys.readouterr().err)

    def test_negative_heartbeat_interval_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--workers", "2",
                     "--heartbeat-interval", "-1.5"]) == 2
        assert ("--heartbeat-interval must be positive"
                in capsys.readouterr().err)

    def test_portless_shard_entry_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded",
                     "--shards", "node-a:7600,node-b"]) == 2
        err = capsys.readouterr().err
        assert "'node-b'" in err and "host:port" in err

    def test_non_numeric_shard_port_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded",
                     "--shards", "node-a:http"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_empty_shard_host_rejected(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--shards", ":7600"]) == 2
        assert "host:port" in capsys.readouterr().err


class TestAggregationFlag:
    def test_run_accepts_aggregation(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--aggregation", "hierarchical"])
        assert args.aggregation == "hierarchical"

    def test_aggregation_defaults_off(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.aggregation is None

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig6", "--aggregation", "tree"])

    def test_aggregation_warns_on_profiling_experiment(self, capsys):
        """table1 runs no trainings: --aggregation must not vanish
        silently even with the default serial backend."""
        assert main(["run", "table1", "--scale", "smoke",
                     "--aggregation", "hierarchical"]) == 0
        err = capsys.readouterr().err.lower()
        assert "warning" in err and "--aggregation" in err

    def test_run_fig6_hierarchical_smoke(self, capsys):
        """CLI-level wiring of hierarchical aggregation end to end."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "2",
                     "--aggregation", "hierarchical"]) == 0
        assert "cycle" in capsys.readouterr().out.lower()


class TestWireCodecFlags:
    def test_run_accepts_wire_codec_flags(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--backend", "sharded", "--workers", "2",
             "--wire-compression", "zlib", "--no-delta-shipping"])
        assert args.wire_compression == "zlib"
        assert args.no_delta_shipping is True

    def test_wire_codec_flags_default_off(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.wire_compression is None
        assert args.no_delta_shipping is False

    def test_invalid_wire_compression_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig6", "--backend", "sharded",
                 "--wire-compression", "snappy"])

    def test_wire_compression_requires_resident_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "thread",
                     "--wire-compression", "zlib"]) == 2
        assert "--wire-compression" in capsys.readouterr().err

    def test_no_delta_shipping_requires_resident_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "serial",
                     "--no-delta-shipping"]) == 2
        assert "--no-delta-shipping" in capsys.readouterr().err

    def test_run_fig6_persistent_zlib_smoke(self, capsys):
        """CLI-level wiring of the wire codec flags end to end."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "2",
                     "--wire-compression", "zlib"]) == 0
        assert "cycle" in capsys.readouterr().out.lower()


class TestArenaFusionFlags:
    def test_run_accepts_arena_and_fusion_flags(self):
        args = build_parser().parse_args(
            ["run", "fig6", "--backend", "persistent", "--workers", "2",
             "--weight-arena", "shm", "--fusion", "stacked"])
        assert args.weight_arena == "shm"
        assert args.fusion == "stacked"

    def test_arena_and_fusion_default_off(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.weight_arena is None
        assert args.fusion is None

    def test_invalid_modes_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig6", "--backend", "persistent",
                 "--weight-arena", "mmap"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig6", "--backend", "persistent",
                 "--fusion", "einsum"])

    def test_weight_arena_rejects_sharded_backend(self, capsys):
        """Arenas are single-host: --backend sharded must fail fast."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "sharded", "--workers", "2",
                     "--weight-arena", "shm"]) == 2
        err = capsys.readouterr().err
        assert "--weight-arena" in err
        assert "single-host" in err

    def test_weight_arena_requires_persistent_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "thread",
                     "--weight-arena", "shm"]) == 2
        assert "--weight-arena" in capsys.readouterr().err

    def test_fusion_requires_resident_backend(self, capsys):
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "serial",
                     "--fusion", "stacked"]) == 2
        assert "--fusion" in capsys.readouterr().err

    def test_run_fig6_arena_fusion_smoke(self, capsys):
        """CLI-level wiring of the arena/fusion flags end to end."""
        assert main(["run", "fig6", "--scale", "smoke",
                     "--backend", "persistent", "--workers", "2",
                     "--weight-arena", "shm", "--fusion", "stacked"]) == 0
        assert "cycle" in capsys.readouterr().out.lower()
