"""Property-based tests (hypothesis) for the core data structures.

These cover the invariants the rest of the system depends on:
aggregation weight normalization, mask set-algebra, neuron-selection
budgets, rotation starvation-freedom, the gradient-variance bound and the
cost-model monotonicities.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (NeuronRotationTracker, SoftTrainingSelector,
                        heterogeneity_weights,
                        optimal_selection_probabilities,
                        sparsified_gradient_variance)
from repro.fl import ClientUpdate, aggregate_full, normalize_weights
from repro.fl.aggregation import ModelStructure, aggregate_partial
from repro.hardware import DeviceProfile, TrainingCostModel
from repro.nn import ModelMask

from ..conftest import make_tiny_model

MODEL = make_tiny_model()
STRUCTURE = ModelStructure.from_model(MODEL)
GLOBAL_WEIGHTS = MODEL.get_weights()
LAYER_SIZES = {"fc1": 16, "fc2": 8, "output": 4}


def update_with_offset(client_id, offset, num_samples, mask=None):
    weights = {name: value + offset
               for name, value in GLOBAL_WEIGHTS.items()}
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=weights, num_samples=num_samples,
                        train_loss=0.0, mask=mask)


positive_floats = st.floats(min_value=1e-3, max_value=1e3,
                            allow_nan=False, allow_infinity=False)


class TestWeightNormalizationProperties:
    @given(st.lists(positive_floats, min_size=1, max_size=10))
    def test_normalize_weights_sums_to_one(self, values):
        normalized = normalize_weights(values)
        assert abs(normalized.sum() - 1.0) < 1e-9
        assert np.all(normalized >= 0)

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=2,
                    max_size=6),
           st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=2,
                    max_size=6))
    def test_fedavg_is_within_update_range(self, sample_counts, offsets):
        length = min(len(sample_counts), len(offsets))
        updates = [update_with_offset(i, offsets[i], sample_counts[i])
                   for i in range(length)]
        aggregated = aggregate_full(updates)
        low, high = min(offsets[:length]), max(offsets[:length])
        for name, value in aggregated.items():
            assert np.all(value >= GLOBAL_WEIGHTS[name] + low - 1e-9)
            assert np.all(value <= GLOBAL_WEIGHTS[name] + high + 1e-9)

    @given(st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1,
                    max_size=5),
           st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                    max_size=5))
    def test_heterogeneity_weights_sum_to_one(self, fractions, samples):
        length = min(len(fractions), len(samples))
        rng = np.random.default_rng(0)
        updates = []
        for index in range(length):
            mask = ModelMask.random(
                MODEL, {name: fractions[index] for name in LAYER_SIZES}, rng)
            updates.append(update_with_offset(index, 0.0, samples[index],
                                              mask=mask))
        weights = heterogeneity_weights(updates)
        assert abs(weights.sum() - 1.0) < 1e-9


class TestPartialAggregationProperties:
    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=-1.0, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_untrained_neurons_never_move(self, fraction, offset, seed):
        rng = np.random.default_rng(seed)
        mask = ModelMask.random(MODEL,
                                {name: fraction for name in LAYER_SIZES}, rng)
        update = update_with_offset(0, offset, 10, mask=mask)
        result = aggregate_partial(GLOBAL_WEIGHTS, [update], STRUCTURE)
        for layer, size in LAYER_SIZES.items():
            weight_name = f"{layer}/weight"
            untouched = ~mask[layer]
            np.testing.assert_allclose(
                result[weight_name][untouched],
                GLOBAL_WEIGHTS[weight_name][untouched])

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=20)
    def test_partial_equals_full_without_masks(self, offset):
        updates = [update_with_offset(0, offset, 10),
                   update_with_offset(1, -offset, 30)]
        partial = aggregate_partial(GLOBAL_WEIGHTS, updates, STRUCTURE)
        full = aggregate_full(updates)
        for name in GLOBAL_WEIGHTS:
            np.testing.assert_allclose(partial[name], full[name], atol=1e-9)


class TestMaskProperties:
    @given(st.floats(min_value=0.05, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    def test_random_mask_fraction_close_to_request(self, fraction, seed):
        rng = np.random.default_rng(seed)
        mask = ModelMask.random(MODEL,
                                {name: fraction for name in LAYER_SIZES}, rng)
        for layer, size in LAYER_SIZES.items():
            expected = max(1, int(round(fraction * size)))
            assert mask.active_counts()[layer] == expected

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=10_000))
    def test_union_contains_both_operands(self, seed_a, seed_b):
        mask_a = ModelMask.random(MODEL, {name: 0.3 for name in LAYER_SIZES},
                                  np.random.default_rng(seed_a))
        mask_b = ModelMask.random(MODEL, {name: 0.3 for name in LAYER_SIZES},
                                  np.random.default_rng(seed_b))
        union = mask_a.union(mask_b)
        for layer in LAYER_SIZES:
            assert np.all(union[layer][mask_a[layer]])
            assert np.all(union[layer][mask_b[layer]])

    @given(st.integers(min_value=0, max_value=10_000))
    def test_intersection_subset_of_union(self, seed):
        rng = np.random.default_rng(seed)
        mask_a = ModelMask.random(MODEL, {name: 0.5 for name in LAYER_SIZES},
                                  rng)
        mask_b = ModelMask.random(MODEL, {name: 0.5 for name in LAYER_SIZES},
                                  rng)
        intersection = mask_a.intersection(mask_b)
        union = mask_a.union(mask_b)
        assert intersection.total_active() <= union.total_active()


class TestSelectionProperties:
    @given(st.floats(min_value=0.1, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_selection_respects_budget(self, volume, top_share, seed):
        selector = SoftTrainingSelector(
            MODEL, {name: volume for name in LAYER_SIZES},
            top_share=top_share, rng=np.random.default_rng(seed))
        contributions = {name: np.random.default_rng(seed).random(size)
                         for name, size in LAYER_SIZES.items()}
        mask = selector.select(contributions)
        counts = selector.selection_counts()
        for layer in LAYER_SIZES:
            assert mask.active_counts()[layer] == counts[layer]

    @given(st.floats(min_value=0.2, max_value=0.8),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_rotation_never_starves_neurons(self, volume, seed):
        fractions = {name: volume for name in LAYER_SIZES}
        selector = SoftTrainingSelector(MODEL, fractions, top_share=0.5,
                                        rng=np.random.default_rng(seed))
        tracker = NeuronRotationTracker(MODEL, fractions)
        contributions = {name: np.arange(size, dtype=float)
                         for name, size in LAYER_SIZES.items()}
        limit = int(np.ceil(tracker.threshold)) + 1
        for _ in range(25):
            mask = selector.select(contributions,
                                   forced=tracker.overdue_neurons())
            tracker.record_cycle(mask)
            assert tracker.max_skip_count() <= limit


class TestConvergenceBoundProperties:
    @given(st.lists(st.floats(min_value=-10.0, max_value=10.0), min_size=2,
                    max_size=64),
           st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=50)
    def test_variance_budget_always_respected(self, gradients, epsilon):
        gradients = np.asarray(gradients)
        probabilities = optimal_selection_probabilities(gradients, epsilon)
        assert np.all(probabilities > 0)
        assert np.all(probabilities <= 1.0)
        variance = sparsified_gradient_variance(gradients, probabilities)
        budget = (1.0 + epsilon) * float(np.sum(gradients ** 2))
        assert variance <= budget * 1.01 + 1e-9


class TestCostModelProperties:
    @given(st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=30)
    def test_cycle_time_monotone_in_compute_and_volume(self, compute,
                                                       volume):
        device = DeviceProfile("d", compute_gflops=compute,
                               memory_bandwidth_gbps=5.0,
                               network_bandwidth_mbps=50.0,
                               memory_capacity_mb=1024.0)
        faster = DeviceProfile("f", compute_gflops=compute * 2,
                               memory_bandwidth_gbps=5.0,
                               network_bandwidth_mbps=50.0,
                               memory_capacity_mb=1024.0)
        cost_model = TrainingCostModel(MODEL, (1, 8, 8),
                                       samples_per_cycle=1000)
        fractions = {name: volume for name in LAYER_SIZES}
        assert (cost_model.estimate(faster).total_seconds
                <= cost_model.estimate(device).total_seconds)
        assert (cost_model.estimate(device, fractions).total_seconds
                <= cost_model.estimate(device).total_seconds + 1e-12)
