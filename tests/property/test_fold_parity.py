"""Property tests: hierarchical folds == flat aggregation, bit for bit.

The hierarchical aggregation path rests on one algebraic property: the
pre-rounded per-level sums inside :func:`~repro.fl.aggregation.fold_updates`
are *exact*, so folding any partition of a cycle's updates shard by shard
and merging the partial aggregates yields the same floats as folding the
whole cycle at once.  These tests drive that property with randomized
weights, masks, client weights and shard assignments — including the
degenerate one-shard and one-client-per-shard topologies — and compare
against the flat :func:`aggregate_full` / :func:`aggregate_partial`
entry points with ``assert_array_equal`` (no tolerances).
"""

import numpy as np
import pytest

from repro.fl import (ClientUpdate, ModelStructure, aggregate_full,
                      aggregate_partial, finalize_partials, fold_updates,
                      normalize_weights)
from repro.nn import ModelMask

from ..conftest import make_tiny_model

SEEDS = (0, 1, 2, 3)


def _random_update(rng, client_id, global_weights, with_mask):
    weights = {name: value + rng.normal(size=value.shape)
               for name, value in global_weights.items()}
    mask = None
    if with_mask:
        # Adversarial coverage: per-layer keep probabilities drawn per
        # update, so some neurons end up covered by zero updates.
        mask = ModelMask({
            "fc1": rng.random(16) < rng.uniform(0.1, 0.9),
            "fc2": rng.random(8) < rng.uniform(0.1, 0.9),
            "output": rng.random(4) < rng.uniform(0.3, 1.0),
        })
    return ClientUpdate(client_id=client_id, client_name=f"c{client_id}",
                        weights=weights,
                        num_samples=int(rng.integers(1, 50)),
                        train_loss=float(rng.random()), mask=mask)


def _random_partition(rng, num_updates, num_shards):
    assignment = rng.integers(0, num_shards, size=num_updates)
    shards = [np.flatnonzero(assignment == shard)
              for shard in range(num_shards)]
    return [shard for shard in shards if len(shard)]


def _fold_per_shard(updates, factors, shards, structure, partial):
    return [
        fold_updates([updates[i] for i in shard],
                     [factors[i] for i in shard],
                     structure=structure, partial=partial)
        for shard in shards
    ]


@pytest.fixture(scope="module")
def model():
    return make_tiny_model()


@pytest.fixture(scope="module")
def structure(model):
    return ModelStructure.from_model(model)


def _topologies(rng, num_updates):
    """Random shard counts plus both degenerate topologies."""
    return [
        [np.arange(num_updates)],                       # one shard
        [np.array([i]) for i in range(num_updates)],    # one client/shard
        _random_partition(rng, num_updates, int(rng.integers(2, 5))),
    ]


class TestFullParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_hierarchical_matches_aggregate_full(self, seed, model,
                                                 structure):
        rng = np.random.default_rng(seed)
        global_weights = model.get_weights()
        num_updates = int(rng.integers(3, 9))
        updates = [_random_update(rng, i, global_weights, with_mask=False)
                   for i in range(num_updates)]
        client_weights = rng.uniform(0.0, 3.0, size=num_updates)
        client_weights[0] = 1.0  # never all-zero
        factors = normalize_weights(client_weights)
        flat = aggregate_full(updates, client_weights=client_weights)
        for shards in _topologies(rng, num_updates):
            partials = _fold_per_shard(updates, factors, shards, structure,
                                       partial=False)
            combined = finalize_partials(None, partials)
            assert set(combined) == set(flat)
            for name in flat:
                np.testing.assert_array_equal(combined[name], flat[name],
                                              err_msg=name)


class TestPartialParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_hierarchical_matches_aggregate_partial(self, seed, model,
                                                    structure):
        rng = np.random.default_rng(seed + 100)
        global_weights = model.get_weights()
        num_updates = int(rng.integers(3, 9))
        updates = [_random_update(rng, i, global_weights,
                                  with_mask=bool(rng.integers(0, 2)))
                   for i in range(num_updates)]
        if all(update.mask is None for update in updates):
            updates[0] = _random_update(rng, 0, global_weights,
                                        with_mask=True)
        client_weights = [float(u.num_samples) for u in updates]
        factors = normalize_weights(client_weights)
        flat = aggregate_partial(global_weights, updates, structure)
        for shards in _topologies(rng, num_updates):
            partials = _fold_per_shard(updates, factors, shards, structure,
                                       partial=True)
            combined = finalize_partials(global_weights, partials,
                                         structure=structure)
            assert set(combined) == set(flat)
            for name in flat:
                assert np.all(np.isfinite(combined[name])), name
                np.testing.assert_array_equal(combined[name], flat[name],
                                              err_msg=name)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zero_coverage_survives_any_partition(self, seed, model,
                                                  structure):
        """Adversarial: neurons no mask covers keep the global value on
        every topology (and nothing is NaN/Inf anywhere)."""
        rng = np.random.default_rng(seed + 500)
        global_weights = model.get_weights()
        num_updates = 5
        updates = []
        for i in range(num_updates):
            update = _random_update(rng, i, global_weights, with_mask=True)
            update.mask["fc1"][2] = False   # nobody covers fc1 neuron 2
            update.mask["fc2"][:] = False   # nobody covers fc2 at all
            updates.append(update)
        factors = normalize_weights([float(u.num_samples) for u in updates])
        for shards in _topologies(rng, num_updates):
            partials = _fold_per_shard(updates, factors, shards, structure,
                                       partial=True)
            combined = finalize_partials(global_weights, partials,
                                         structure=structure)
            for name in combined:
                assert np.all(np.isfinite(combined[name])), name
            np.testing.assert_array_equal(
                combined["fc1/weight"][2], global_weights["fc1/weight"][2])
            np.testing.assert_array_equal(
                combined["fc2/weight"], global_weights["fc2/weight"])
            np.testing.assert_array_equal(
                combined["fc2/bias"], global_weights["fc2/bias"])
