"""Property-based fuzzing of the wire codec.

Seeded generators produce random weight tables — mixed dtypes, shapes
(scalars, empties, high-rank), C- and F-contiguity, NaN/inf payloads —
and ship evolving sequences of them through a committed delta channel
under every compression setting.  The property: the decoded tables are
*bit-identical* to the originals, and delta-encoded shipping decodes to
exactly what full shipping decodes to.
"""

import numpy as np
import pytest

from repro.fl.codec import (COMPRESSIONS, DeltaDecoderState,
                            DeltaEncoderState, decode_message,
                            encode_message)

SEEDS = (0, 1, 2, 3)

DTYPES = (np.float64, np.float32, np.int64, np.int32, np.int8,
          np.uint8, np.bool_, np.complex128)


class _Batch:
    def __init__(self, weights_table):
        self.weights_table = weights_table


def _random_array(rng, dtype):
    rank = int(rng.integers(0, 4))
    shape = tuple(int(rng.integers(0, 6)) for _ in range(rank))
    if dtype is np.bool_:
        array = rng.integers(0, 2, size=shape).astype(bool)
    elif dtype is np.complex128:
        array = (rng.normal(size=shape) + 1j * rng.normal(size=shape))
    elif np.issubdtype(dtype, np.floating):
        array = rng.normal(size=shape).astype(dtype)
        if array.size and rng.random() < 0.3:
            flat = array.reshape(-1)
            flat[rng.integers(0, len(flat))] = np.nan
            if len(flat) > 1:
                flat[rng.integers(0, len(flat))] = np.inf
    else:
        array = rng.integers(-100, 100, size=shape).astype(dtype)
    if array.ndim >= 2 and rng.random() < 0.5:
        array = np.asfortranarray(array)
    return array


def _random_table(rng):
    names = [f"p{i}" for i in range(int(rng.integers(1, 6)))]
    return {name: _random_array(rng, DTYPES[int(rng.integers(0,
                                                             len(DTYPES)))])
            for name in names}


def _evolve(rng, table):
    """A plausible next-cycle table: most parameters nudged, some kept
    bit-identical, occasionally one reshaped or added."""
    evolved = {}
    for name, value in table.items():
        roll = rng.random()
        if roll < 0.25:
            evolved[name] = value  # unchanged (the skip path)
        elif roll < 0.85 and value.size and np.issubdtype(value.dtype,
                                                          np.floating):
            evolved[name] = (value + value.dtype.type(1e-3)
                             * rng.normal(size=value.shape).astype(
                                 value.dtype))
        elif roll < 0.92:
            evolved[name] = _random_array(rng, value.dtype.type
                                          if value.dtype.type in DTYPES
                                          else np.float64)
        else:
            evolved[name] = value.copy()
    if rng.random() < 0.3:
        evolved[f"new{int(rng.integers(0, 100))}"] = _random_array(
            rng, np.float64)
    return evolved


def _assert_bit_identical(actual, expected):
    assert actual.keys() == expected.keys()
    for name in expected:
        got, want = np.asarray(actual[name]), np.asarray(expected[name])
        assert got.dtype == want.dtype, name
        assert got.shape == want.shape, name
        assert (np.ascontiguousarray(got).tobytes()
                == np.ascontiguousarray(want).tobytes()), name


@pytest.mark.parametrize("compression", COMPRESSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_tables_roundtrip_bit_identical(seed, compression):
    rng = np.random.default_rng(seed)
    table = _random_table(rng)
    frame = encode_message(("run", _Batch([table])),
                           compression=compression)
    _, payload = decode_message(frame.tobytes())
    _assert_bit_identical(payload.weights_table[0], table)


@pytest.mark.parametrize("compression", COMPRESSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_evolving_delta_equals_full_shipping(seed, compression):
    """Delta-vs-full equivalence: a delta channel decodes every cycle's
    table to exactly what stateless full shipping decodes."""
    rng = np.random.default_rng(seed + 100)
    encoder, decoder = DeltaEncoderState(), DeltaDecoderState()
    table = _random_table(rng)
    for _ in range(6):
        delta_frame = encode_message(("run", _Batch([table])),
                                     compression=compression,
                                     delta_state=encoder)
        _, delta_payload = decode_message(delta_frame.tobytes(),
                                          delta_state=decoder)
        encoder.commit(delta_frame.pending_base, delta_frame.pending_seq)
        full_frame = encode_message(("run", _Batch([table])),
                                    compression=compression)
        _, full_payload = decode_message(full_frame.tobytes())
        _assert_bit_identical(full_payload.weights_table[0], table)
        _assert_bit_identical(delta_payload.weights_table[0],
                              full_payload.weights_table[0])
        table = _evolve(rng, table)


@pytest.mark.parametrize("seed", SEEDS)
def test_interrupted_channel_recovers_with_full_snapshot(seed):
    """After an encoder reset mid-sequence (the transport-failure path),
    the next frame decodes correctly against any decoder state."""
    rng = np.random.default_rng(seed + 200)
    encoder, decoder = DeltaEncoderState(), DeltaDecoderState()
    table = _random_table(rng)
    for cycle in range(5):
        frame = encode_message(("run", _Batch([table])),
                               delta_state=encoder, compression="zlib")
        _, payload = decode_message(frame.tobytes(), delta_state=decoder)
        _assert_bit_identical(payload.weights_table[0], table)
        encoder.commit(frame.pending_base, frame.pending_seq)
        if cycle == 2:
            # Simulated reconnect: the encoder forgets its base, the
            # decoder might even be a fresh one (shard restart).
            encoder.reset()
            decoder = DeltaDecoderState()
        table = _evolve(rng, table)
