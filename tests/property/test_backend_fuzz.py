"""Property-based determinism fuzzing of the execution backends.

A seeded fuzzer generates random interleavings of training cycles and
fleet mutations (``add_client``, ``set_client_device``, client-config
changes) and replays the identical script on every execution backend.
The property under test is the substrate's trust anchor: *any* sequence
of cycles and mutations produces bit-identical losses, client RNG
streams and model weights on serial, thread, process, persistent and
sharded backends.

The scripts are deterministic functions of their seed, so a failure
reproduces exactly from the test id.
"""

import threading

import numpy as np
import pytest

from repro.fl import ClientConfig, FLClient
from repro.nn import ModelMask

from ..conftest import (FAST_DEVICE, make_tiny_dataset, make_tiny_model,
                        make_tiny_simulation)
from ..fl.test_multitenant import _shard_fleet

FUZZ_SEEDS = (0, 1, 2)
#: Backend configurations replayed against the serial reference: every
#: non-serial backend, plus the worker-resident backends under each wire
#: codec variant (delta + zlib compression, and delta disabled), the
#: persistent backend's shared-memory arena dispatch, and the stacked
#: fusion engine — none of these knobs may be visible in the numerics.
BACKENDS_UNDER_TEST = (
    ("thread", {}),
    ("process", {}),
    ("persistent", {}),
    ("sharded", {}),
    ("persistent", {"wire_compression": "zlib"}),
    ("sharded", {"wire_compression": "zlib"}),
    ("persistent", {"delta_shipping": False}),
    ("persistent", {"weight_arena": "shm"}),
    ("persistent", {"fusion": "stacked"}),
    ("persistent", {"weight_arena": "shm", "fusion": "stacked"}),
    ("sharded", {"fusion": "stacked"}),
)

BACKEND_IDS = [name if not kwargs else
               f"{name}-{'-'.join(f'{k}={v}' for k, v in kwargs.items())}"
               for name, kwargs in BACKENDS_UNDER_TEST]

#: Serial reference fingerprints, computed once per seed.
_SERIAL_CACHE = {}


def generate_script(seed, num_ops=8):
    """A random but seed-deterministic interleaving of fleet operations.

    Returns a list of op tuples; the initial fleet has 3 clients and
    ``add`` ops grow it.  The final op is always a full-fleet cycle so
    every replica's end state is exercised.
    """
    rng = np.random.default_rng(seed)
    ops = []
    num_clients = 3
    for _ in range(num_ops):
        roll = rng.random()
        if roll < 0.5:
            size = int(rng.integers(1, num_clients + 1))
            indices = sorted(int(index) for index in rng.choice(
                num_clients, size=size, replace=False))
            ops.append(("cycle", indices))
        elif roll < 0.65:
            ops.append(("add", int(rng.integers(0, 10_000))))
            num_clients += 1
        elif roll < 0.8:
            ops.append(("device", int(rng.integers(0, num_clients)),
                        float(rng.uniform(0.3, 2.0))))
        else:
            ops.append(("config", int(rng.integers(0, num_clients)),
                        int(rng.integers(1, 3)),
                        (10, 20)[int(rng.integers(0, 2))]))
    ops.append(("cycle", list(range(num_clients))))
    return ops


def replay(ops, backend_name, backend_kwargs=None):
    """Run one script on one backend; return its full fingerprint."""
    sim = make_tiny_simulation()
    if backend_name != "serial":
        kwargs = dict(backend_kwargs or {})
        if "shards" not in kwargs:  # one shard per explicit address
            kwargs.setdefault("max_workers", 2)
        sim.set_backend(backend_name, **kwargs)
    losses = []
    try:
        for op in ops:
            if op[0] == "cycle":
                updates = sim.train_clients(op[1])
                losses.extend(update.train_loss for update in updates)
            elif op[0] == "add":
                index = sim.num_clients()
                sim.add_client(FLClient(
                    client_id=index,
                    dataset=make_tiny_dataset(40, seed=op[1]),
                    device=FAST_DEVICE.scaled(name=f"joiner-{index}"),
                    model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20)))
            elif op[0] == "device":
                _, index, factor = op
                sim.set_client_device(index, FAST_DEVICE.scaled(
                    compute=factor, name=f"swapped-{index}"))
            elif op[0] == "config":
                _, index, epochs, batch_size = op
                sim.client(index).config = ClientConfig(
                    batch_size=batch_size, local_epochs=epochs,
                    learning_rate=0.1)
        rng_states = [client.rng.bit_generator.state["state"]
                      for client in sim.clients]
        weights = [client.model.get_weights() for client in sim.clients]
    finally:
        sim.close()
    return {"losses": losses, "rng_states": rng_states, "weights": weights}


def _serial_fingerprint(seed):
    if seed not in _SERIAL_CACHE:
        _SERIAL_CACHE[seed] = replay(generate_script(seed), "serial")
    return _SERIAL_CACHE[seed]


@pytest.mark.parametrize("backend_config", BACKENDS_UNDER_TEST,
                         ids=BACKEND_IDS)
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_random_interleavings_bit_identical_to_serial(seed, backend_config):
    backend_name, backend_kwargs = backend_config
    ops = generate_script(seed)
    reference = _serial_fingerprint(seed)
    actual = replay(ops, backend_name, backend_kwargs)
    assert actual["losses"] == reference["losses"]
    assert actual["rng_states"] == reference["rng_states"]
    assert len(actual["weights"]) == len(reference["weights"])
    for expected, got in zip(reference["weights"], actual["weights"]):
        assert expected.keys() == got.keys()
        for key in expected:
            np.testing.assert_array_equal(expected[key], got[key])


#: Aggregation-topology axis: the same scripts replayed through
#: ``train_and_aggregate`` with in-shard hierarchical folding must match
#: the flat serial reference bit for bit — losses, client RNG streams and
#: the *global* model (client replicas stay shard-side under the wire
#: backends, so they are deliberately not part of this fingerprint).
AGGREGATION_BACKENDS = (
    ("serial", {}),
    ("thread", {}),
    ("process", {}),
    ("persistent", {}),
    ("sharded", {}),
    ("persistent", {"wire_compression": "zlib"}),
    # Masked hierarchical folding on top of arena dispatch + stacked
    # fusion: masks must gate the fused GEMM exactly like serial.
    ("persistent", {"weight_arena": "shm", "fusion": "stacked"}),
)

AGGREGATION_IDS = [name if not kwargs else
                   f"{name}-{'-'.join(f'{k}={v}' for k, v in kwargs.items())}"
                   for name, kwargs in AGGREGATION_BACKENDS]

_SERIAL_AGGREGATED_CACHE = {}


def replay_aggregated(ops, backend_name, aggregation, backend_kwargs=None,
                      mask_seed=0):
    """Replay one script through the server-aggregation path.

    Roughly half the cycles aggregate neuron-masked partial updates; the
    mask stream is seed-deterministic and independent of the backend, so
    every replay of a script sees identical masks.
    """
    sim = make_tiny_simulation()
    sim.set_backend(backend_name, max_workers=2, aggregation=aggregation,
                    **(backend_kwargs or {}))
    mask_rng = np.random.default_rng(mask_seed)
    losses = []
    try:
        for cycle, op in enumerate(ops):
            if op[0] == "cycle":
                masks = None
                if mask_rng.random() < 0.5:
                    masks = {index: ModelMask.random(
                                 sim.server.global_model,
                                 {"fc1": 0.5, "fc2": 0.5}, rng=mask_rng)
                             for index in op[1]
                             if mask_rng.random() < 0.7} or None
                summaries = sim.train_and_aggregate(
                    op[1], masks=masks, base_cycle=cycle,
                    partial=masks is not None)
                losses.extend(summary.train_loss for summary in summaries)
            elif op[0] == "add":
                index = sim.num_clients()
                sim.add_client(FLClient(
                    client_id=index,
                    dataset=make_tiny_dataset(40, seed=op[1]),
                    device=FAST_DEVICE.scaled(name=f"joiner-{index}"),
                    model_factory=make_tiny_model,
                    config=ClientConfig(batch_size=20)))
            elif op[0] == "device":
                _, index, factor = op
                sim.set_client_device(index, FAST_DEVICE.scaled(
                    compute=factor, name=f"swapped-{index}"))
            elif op[0] == "config":
                _, index, epochs, batch_size = op
                sim.client(index).config = ClientConfig(
                    batch_size=batch_size, local_epochs=epochs,
                    learning_rate=0.1)
        rng_states = [client.rng.bit_generator.state["state"]
                      for client in sim.clients]
        global_weights = sim.server.get_global_weights()
    finally:
        sim.close()
    return {"losses": losses, "rng_states": rng_states,
            "global_weights": global_weights}


def _serial_aggregated_fingerprint(seed):
    if seed not in _SERIAL_AGGREGATED_CACHE:
        _SERIAL_AGGREGATED_CACHE[seed] = replay_aggregated(
            generate_script(seed), "serial", "flat", mask_seed=seed)
    return _SERIAL_AGGREGATED_CACHE[seed]


@pytest.mark.parametrize("backend_config", AGGREGATION_BACKENDS,
                         ids=AGGREGATION_IDS)
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_hierarchical_aggregation_bit_identical_to_flat_serial(
        seed, backend_config):
    backend_name, backend_kwargs = backend_config
    ops = generate_script(seed)
    reference = _serial_aggregated_fingerprint(seed)
    actual = replay_aggregated(ops, backend_name, "hierarchical",
                               backend_kwargs, mask_seed=seed)
    assert actual["losses"] == reference["losses"]
    assert actual["rng_states"] == reference["rng_states"]
    expected = reference["global_weights"]
    assert expected.keys() == actual["global_weights"].keys()
    for key in expected:
        np.testing.assert_array_equal(expected[key],
                                      actual["global_weights"][key],
                                      err_msg=key)


#: Multi-tenant axis: one fuzz seed is enough to interleave — the point
#: is session isolation under concurrency, not script coverage (the
#: single-tenant matrix above already sweeps the scripts).
MULTITENANT_SEEDS = (0,)


@pytest.mark.parametrize("seed", MULTITENANT_SEEDS)
def test_replay_on_shared_fleet_unperturbed_by_concurrent_tenant(seed):
    """The fuzz property must survive multi-tenancy: a seeded script
    replayed against an *external* shard fleet stays bit-identical to
    serial while a second parent hammers the same fleet from its own
    session the whole time."""
    ops = generate_script(seed)
    reference = _serial_fingerprint(seed)
    with _shard_fleet(2) as addresses:
        stop = threading.Event()
        noise_errors = []

        def noise_parent():
            try:
                while not stop.is_set():
                    sim = make_tiny_simulation()
                    sim.set_backend("sharded", shards=addresses,
                                    wire_compression="zlib",
                                    delta_shipping=True)
                    try:
                        sim.train_clients([0, 1])
                    finally:
                        sim.close()
            except Exception as exc:  # surfaced by the main thread
                noise_errors.append(exc)

        thread = threading.Thread(target=noise_parent, daemon=True)
        thread.start()
        try:
            actual = replay(ops, "sharded",
                            {"shards": addresses, "wire_compression": "zlib",
                             "delta_shipping": True})
        finally:
            stop.set()
            thread.join(timeout=120)
        assert not thread.is_alive(), "the noise parent wedged"
        assert not noise_errors, f"the noise parent failed: {noise_errors}"
    assert actual["losses"] == reference["losses"]
    assert actual["rng_states"] == reference["rng_states"]
    for expected, got in zip(reference["weights"], actual["weights"]):
        assert expected.keys() == got.keys()
        for key in expected:
            np.testing.assert_array_equal(expected[key], got[key])


def test_scripts_cover_every_op_kind():
    """The fuzz seeds jointly exercise cycles and all three mutations."""
    kinds = {op[0] for seed in FUZZ_SEEDS
             for op in generate_script(seed)}
    assert kinds == {"cycle", "add", "device", "config"}


def test_script_generation_is_deterministic():
    assert generate_script(7) == generate_script(7)
    assert generate_script(7) != generate_script(8)
