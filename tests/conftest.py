"""Shared fixtures for the test suite.

The fixtures build deliberately tiny models, datasets and fleets so every
test runs in milliseconds while still exercising the real code paths
(convolutions, partial aggregation, cost models, …).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset
from repro.data.synthetic import SyntheticImageSpec, make_classification_images
from repro.fl import ClientConfig, FLClient, FLServer, FederatedSimulation
from repro.hardware import DeviceProfile
from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Sequential

#: A tiny image spec used across data / FL tests (fast to generate & train).
TINY_SPEC = SyntheticImageSpec(
    name="tiny", image_shape=(1, 8, 8), num_classes=4, separation=1.2,
    noise_std=0.5, max_shift=1, label_noise=0.0, prototypes_per_class=1,
    smoothness=2)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


def make_tiny_dataset(num_samples: int = 80, seed: int = 0) -> Dataset:
    """A small learnable 4-class image dataset (1x8x8)."""
    return make_classification_images(num_samples, TINY_SPEC,
                                      np.random.default_rng(seed))


@pytest.fixture
def tiny_dataset() -> Dataset:
    """80-sample tiny dataset."""
    return make_tiny_dataset()


def make_tiny_model(seed: int = 7) -> Sequential:
    """A small dense classifier over flattened 1x8x8 images."""
    generator = np.random.default_rng(seed)
    return Sequential([
        Flatten(name="flatten"),
        Dense(64, 16, rng=generator, name="fc1"),
        ReLU(name="relu1"),
        Dense(16, 8, rng=generator, name="fc2"),
        ReLU(name="relu2"),
        Dense(8, 4, rng=generator, name="output"),
    ], name="tiny-mlp")


@pytest.fixture
def tiny_model() -> Sequential:
    """Fresh tiny model."""
    return make_tiny_model()


def make_device(name: str = "dev", compute: float = 50.0,
                memory_bw: float = 10.0, network: float = 100.0,
                memory: float = 1024.0) -> DeviceProfile:
    """Convenience device constructor for tests."""
    return DeviceProfile(name=name, compute_gflops=compute,
                         memory_bandwidth_gbps=memory_bw,
                         network_bandwidth_mbps=network,
                         memory_capacity_mb=memory)


FAST_DEVICE = make_device("fast-node", compute=200.0)
SLOW_DEVICE = make_device("slow-node", compute=5.0, memory_bw=2.0,
                          network=20.0, memory=256.0)


def make_tiny_simulation(num_capable: int = 2, num_stragglers: int = 1,
                         samples_per_client: int = 40,
                         seed: int = 0) -> FederatedSimulation:
    """A complete small simulation: tiny model, tiny data, mixed fleet."""
    total_clients = num_capable + num_stragglers
    # One generator call so every client and the test set share the same
    # class prototypes (they solve the same task).
    pool = make_tiny_dataset(samples_per_client * total_clients + 60,
                             seed=seed)
    datasets = [pool.subset(np.arange(index * samples_per_client,
                                      (index + 1) * samples_per_client))
                for index in range(total_clients)]
    test = pool.subset(np.arange(samples_per_client * total_clients,
                                 len(pool)))
    devices = ([FAST_DEVICE.scaled(name=f"capable-{i}")
                for i in range(num_capable)]
               + [SLOW_DEVICE.scaled(name=f"straggler-{i}")
                  for i in range(num_stragglers)])
    config = ClientConfig(batch_size=20, local_epochs=1, learning_rate=0.1)
    server = FLServer(make_tiny_model, test_dataset=test)
    clients = [FLClient(client_id=index, dataset=dataset, device=device,
                        model_factory=make_tiny_model, config=config,
                        seed=seed)
               for index, (dataset, device) in enumerate(zip(datasets,
                                                             devices))]
    return FederatedSimulation(clients, server, input_shape=(1, 8, 8),
                               workload_scale=200.0, seed=seed)


@pytest.fixture
def tiny_simulation() -> FederatedSimulation:
    """2 capable + 1 straggler tiny simulation."""
    return make_tiny_simulation()
