"""Test package marker (enables the suite's relative conftest imports)."""
