"""Tests for the baseline collaboration strategies."""

import numpy as np
import pytest

from repro.baselines import (AFOStrategy, AsynchronousFLStrategy,
                             FixedPruningStrategy, RandomMaskingStrategy,
                             SoftTrainingOnlyStrategy, StragglerAwareStrategy,
                             SynchronousFLStrategy, make_st_only_config)
from repro.core import HeliosConfig

from ..conftest import make_tiny_simulation


@pytest.fixture
def sim():
    return make_tiny_simulation()


class TestStragglerAwareBase:
    def test_setup_identifies_stragglers(self, sim):
        strategy = SynchronousFLStrategy()
        strategy.setup(sim)
        assert strategy.straggler_indices() == [2]
        assert strategy.capable_indices(sim) == [0, 1]

    def test_straggler_top_k_override(self, sim):
        strategy = SynchronousFLStrategy(straggler_top_k=2)
        strategy.setup(sim)
        assert len(strategy.straggler_indices()) == 2

    def test_volumes_assigned_to_stragglers(self, sim):
        strategy = RandomMaskingStrategy()
        strategy.setup(sim)
        assert set(strategy.volumes) == {2}
        assert 0.0 < strategy.volumes[2] < 1.0

    def test_capable_pace_excludes_straggler(self, sim):
        strategy = SynchronousFLStrategy()
        strategy.setup(sim)
        assert (strategy.capable_pace_seconds(sim)
                < sim.slowest_full_cycle_seconds())

    def test_layer_fractions_uniform(self, sim):
        strategy = RandomMaskingStrategy()
        strategy.setup(sim)
        fractions = strategy.layer_fractions(sim, 2)
        assert len(set(fractions.values())) == 1

    def test_base_class_has_no_cycle_implementation(self, sim):
        strategy = StragglerAwareStrategy()
        strategy.setup(sim)
        with pytest.raises(NotImplementedError):
            strategy.execute_cycle(1, sim)


class TestSynchronousFL:
    def test_cycle_duration_includes_straggler(self, sim):
        strategy = SynchronousFLStrategy()
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        np.testing.assert_allclose(outcome.duration_s,
                                   sim.slowest_full_cycle_seconds())

    def test_everyone_participates(self, sim):
        strategy = SynchronousFLStrategy()
        strategy.setup(sim)
        assert strategy.execute_cycle(1, sim).participating_clients == 3

    def test_run_improves_accuracy(self, sim):
        history = sim.run(SynchronousFLStrategy(), num_cycles=6)
        assert history.final_accuracy() > 0.4


class TestAsynchronousFL:
    def test_straggler_does_not_bound_cycle(self, sim):
        strategy = AsynchronousFLStrategy()
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.duration_s < sim.slowest_full_cycle_seconds()

    def test_straggler_delivery_is_delayed(self, sim):
        strategy = AsynchronousFLStrategy(aggregation_period=3)
        strategy.setup(sim)
        first = strategy.execute_cycle(1, sim)
        second = strategy.execute_cycle(2, sim)
        third = strategy.execute_cycle(3, sim)
        # Cycle 1 starts the pending job (2 capable updates only); the
        # delivery happens at the finish cycle.
        assert first.participating_clients == 2
        assert second.participating_clients == 2
        assert third.participating_clients == 3
        assert third.extra["stale_deliveries"] == 1.0

    def test_period_derived_from_slowdown(self, sim):
        strategy = AsynchronousFLStrategy()
        strategy.setup(sim)
        period = strategy.straggler_period(sim, 2)
        assert period >= 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            AsynchronousFLStrategy(aggregation_period=0)

    def test_run_produces_history(self, sim):
        history = sim.run(AsynchronousFLStrategy(aggregation_period=2),
                          num_cycles=6)
        assert len(history) == 6
        assert history.strategy_name == "Asyn. FL"


class TestAFO:
    def test_mixing_moves_global_toward_update(self, sim):
        strategy = AFOStrategy(mixing_alpha=0.5)
        strategy.setup(sim)
        before = sim.server.get_global_weights()
        strategy.execute_cycle(1, sim)
        after = sim.server.get_global_weights()
        changed = any(not np.allclose(before[name], after[name])
                      for name in before)
        assert changed

    def test_staleness_weight_decays(self):
        strategy = AFOStrategy(mixing_alpha=0.8, staleness_exponent=1.0)
        assert strategy._staleness_weight(0) == pytest.approx(0.8)
        assert strategy._staleness_weight(3) == pytest.approx(0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AFOStrategy(mixing_alpha=0.0)
        with pytest.raises(ValueError):
            AFOStrategy(staleness_exponent=-1.0)

    def test_run_produces_history(self, sim):
        history = sim.run(AFOStrategy(aggregation_period=2), num_cycles=5)
        assert len(history) == 5


class TestRandomMasking:
    def test_straggler_trains_partial_model(self, sim):
        strategy = RandomMaskingStrategy()
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.straggler_fraction_trained < 1.0

    def test_cycle_faster_than_sync(self, sim):
        strategy = RandomMaskingStrategy()
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.duration_s < sim.slowest_full_cycle_seconds()

    def test_masks_differ_between_cycles(self, sim):
        strategy = RandomMaskingStrategy(seed=3)
        strategy.setup(sim)
        # Capture the straggler masks of two consecutive cycles at the
        # batch-API seam (run through the engine).
        seen_masks = []
        original_train = sim.train_clients

        def spy(indices, weights=None, masks=None, **kwargs):
            for mask in (masks or {}).values():
                seen_masks.append(mask.as_dict())
            return original_train(indices, weights, masks=masks, **kwargs)

        sim.train_clients = spy
        strategy.execute_cycle(1, sim)
        strategy.execute_cycle(2, sim)
        sim.train_clients = original_train
        masks = seen_masks
        assert len(masks) == 2
        any_difference = any(
            not np.array_equal(masks[0][name], masks[1][name])
            for name in masks[0])
        assert any_difference


class TestFixedPruning:
    def test_mask_is_fixed_across_cycles(self, sim):
        strategy = FixedPruningStrategy(seed=0)
        strategy.setup(sim)
        mask_before = strategy.fixed_masks[2].as_dict()
        strategy.execute_cycle(1, sim)
        strategy.execute_cycle(2, sim)
        mask_after = strategy.fixed_masks[2].as_dict()
        for name in mask_before:
            np.testing.assert_array_equal(mask_before[name],
                                          mask_after[name])

    def test_straggler_fraction_below_one(self, sim):
        strategy = FixedPruningStrategy(seed=0)
        strategy.setup(sim)
        outcome = strategy.execute_cycle(1, sim)
        assert outcome.straggler_fraction_trained < 1.0


class TestSTOnly:
    def test_config_forces_fedavg_aggregation(self):
        config = make_st_only_config(HeliosConfig(top_share=0.3, seed=5))
        assert config.aggregation == "fedavg"
        assert config.top_share == 0.3
        assert config.seed == 5

    def test_strategy_name(self):
        assert SoftTrainingOnlyStrategy().name == "S.T. Only"

    def test_runs_and_learns(self, sim):
        history = sim.run(SoftTrainingOnlyStrategy(HeliosConfig(seed=0)),
                          num_cycles=5)
        assert history.final_accuracy() > 0.3


class TestCrossStrategyProperties:
    def test_sync_is_slowest_per_cycle(self):
        durations = {}
        for strategy_cls in (SynchronousFLStrategy, RandomMaskingStrategy,
                             AsynchronousFLStrategy):
            sim = make_tiny_simulation()
            strategy = strategy_cls()
            strategy.setup(sim)
            durations[strategy.name] = strategy.execute_cycle(1, sim).duration_s
        assert durations["Syn. FL"] >= durations["Random"]
        assert durations["Syn. FL"] >= durations["Asyn. FL"]

    def test_all_strategies_complete_a_short_run(self):
        from repro.core import HeliosStrategy
        strategies = [SynchronousFLStrategy(), AsynchronousFLStrategy(),
                      AFOStrategy(), RandomMaskingStrategy(),
                      FixedPruningStrategy(), SoftTrainingOnlyStrategy(),
                      HeliosStrategy()]
        for strategy in strategies:
            sim = make_tiny_simulation()
            history = sim.run(strategy, num_cycles=3)
            assert len(history) == 3
            assert all(np.isfinite(value) for value in history.accuracies())
